#include "topology/topology.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

SingleTopology::SingleTopology(int num_processors, int num_buses,
                               std::vector<int> bus_of_module)
    : Topology(num_processors, static_cast<int>(bus_of_module.size()),
               num_buses),
      bus_of_module_(std::move(bus_of_module)),
      modules_per_bus_(static_cast<std::size_t>(num_buses), 0) {
  for (std::size_t m = 0; m < bus_of_module_.size(); ++m) {
    const int b = bus_of_module_[m];
    MBUS_EXPECTS(b >= 0 && b < num_buses,
                 cat("module ", m, " mapped to invalid bus ", b));
    ++modules_per_bus_[static_cast<std::size_t>(b)];
  }
}

SingleTopology SingleTopology::even(int num_processors, int num_memories,
                                    int num_buses) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  MBUS_EXPECTS(num_memories % num_buses == 0,
               "even layout requires B | M");
  const int per_bus = num_memories / num_buses;
  std::vector<int> mapping(static_cast<std::size_t>(num_memories));
  for (int m = 0; m < num_memories; ++m) {
    mapping[static_cast<std::size_t>(m)] = m / per_bus;
  }
  return SingleTopology(num_processors, num_buses, std::move(mapping));
}

std::string SingleTopology::name() const {
  return cat("single(N=", num_processors(), ",M=", num_memories(),
             ",B=", num_buses(), ")");
}

bool SingleTopology::memory_on_bus(int m, int b) const {
  check_module_index(m);
  check_bus_index(b);
  return bus_of_module_[static_cast<std::size_t>(m)] == b;
}

long SingleTopology::connections() const {
  return static_cast<long>(num_buses()) * num_processors() + num_memories();
}

int SingleTopology::bus_load(int b) const {
  check_bus_index(b);
  return num_processors() + modules_per_bus_[static_cast<std::size_t>(b)];
}

int SingleTopology::fault_tolerance_degree() const { return 0; }

int SingleTopology::bus_of_module(int m) const {
  check_module_index(m);
  return bus_of_module_[static_cast<std::size_t>(m)];
}

int SingleTopology::modules_on_bus_count(int b) const {
  check_bus_index(b);
  return modules_per_bus_[static_cast<std::size_t>(b)];
}

}  // namespace mbus
