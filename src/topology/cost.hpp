// Cost and fault-tolerance summary of a topology (Table I of the paper).
#pragma once

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace mbus {

struct CostSummary {
  long connections = 0;        // total processor + memory taps
  std::vector<int> bus_loads;  // load of each bus (N + modules on it)
  int max_bus_load = 0;
  int min_bus_load = 0;
  int fault_tolerance_degree = 0;  // tolerable arbitrary bus failures
};

/// Compute the Table I quantities from the scheme's closed forms.
CostSummary cost_summary(const Topology& topology);

/// The symbolic Table I row for a scheme (for report output), e.g.
/// "B(N+M)" / "N+M" / "B-1" for the full connection scheme.
struct SymbolicCostRow {
  std::string scheme;
  std::string connections;
  std::string bus_load;
  std::string fault_tolerance;
};

/// All four rows of Table I, in paper order.
std::vector<SymbolicCostRow> table1_symbolic_rows();

}  // namespace mbus
