#include "topology/diagram.hpp"

#include <sstream>

#include "util/format.hpp"

namespace mbus {

namespace {
constexpr int kColumnWidth = 4;

std::string column_label(const std::string& prefix, int index) {
  return prefix + std::to_string(index + 1);
}
}  // namespace

std::string render_diagram(const Topology& topology) {
  const int n = topology.num_processors();
  const int m = topology.num_memories();
  const int b = topology.num_buses();

  std::ostringstream os;
  os << topology.name() << "\n";

  // Header row: processor columns, a separator, then memory columns.
  std::string header = "      ";
  for (int p = 0; p < n; ++p) {
    header += pad_center(column_label("P", p), kColumnWidth);
  }
  header += " | ";
  for (int j = 0; j < m; ++j) {
    header += pad_center(column_label("M", j), kColumnWidth);
  }
  os << header << "\n";

  // One rail per bus. Processors tap every bus in all schemes in this
  // paper; memory taps follow the topology's connectivity relation.
  for (int bus = 0; bus < b; ++bus) {
    std::string rail = pad_right(column_label("B", bus), 5) + " ";
    for (int p = 0; p < n; ++p) {
      (void)p;
      rail += pad_center("*", kColumnWidth);
    }
    rail += " | ";
    for (int j = 0; j < m; ++j) {
      rail += pad_center(topology.memory_on_bus(j, bus) ? "*" : "-",
                         kColumnWidth);
    }
    os << rail << "\n";
  }
  return os.str();
}

}  // namespace mbus
