#include "topology/topology.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

PartialGTopology::PartialGTopology(int num_processors, int num_memories,
                                   int num_buses, int groups)
    : Topology(num_processors, num_memories, num_buses), groups_(groups) {
  MBUS_EXPECTS(groups >= 1, "need at least one group");
  MBUS_EXPECTS(num_memories % groups == 0,
               "partial bus network requires g | M");
  MBUS_EXPECTS(num_buses % groups == 0,
               "partial bus network requires g | B");
}

std::string PartialGTopology::name() const {
  return cat("partial-g(N=", num_processors(), ",M=", num_memories(),
             ",B=", num_buses(), ",g=", groups_, ")");
}

int PartialGTopology::modules_per_group() const noexcept {
  return num_memories() / groups_;
}

int PartialGTopology::buses_per_group() const noexcept {
  return num_buses() / groups_;
}

int PartialGTopology::group_of_module(int m) const {
  check_module_index(m);
  return m / modules_per_group();
}

int PartialGTopology::group_of_bus(int b) const {
  check_bus_index(b);
  return b / buses_per_group();
}

bool PartialGTopology::memory_on_bus(int m, int b) const {
  return group_of_module(m) == group_of_bus(b);
}

long PartialGTopology::connections() const {
  return static_cast<long>(num_buses()) *
         (num_processors() + modules_per_group());
}

int PartialGTopology::bus_load(int b) const {
  check_bus_index(b);
  return num_processors() + modules_per_group();
}

int PartialGTopology::fault_tolerance_degree() const {
  return buses_per_group() - 1;
}

}  // namespace mbus
