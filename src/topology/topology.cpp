#include "topology/topology.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFull:
      return "full";
    case Scheme::kSingle:
      return "single";
    case Scheme::kPartialG:
      return "partial-g";
    case Scheme::kKClasses:
      return "k-classes";
  }
  MBUS_ASSERT(false, "unknown scheme");
  return {};
}

Topology::Topology(int num_processors, int num_memories, int num_buses)
    : num_processors_(num_processors),
      num_memories_(num_memories),
      num_buses_(num_buses) {
  MBUS_EXPECTS(num_processors >= 1, "need at least one processor");
  MBUS_EXPECTS(num_memories >= 1, "need at least one memory module");
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  // The paper states B <= min(M, N) in the introduction, yet its own
  // Fig. 3 example is a 3×6×4 network (B=4 > N=3); we therefore do not
  // enforce that inequality — the formulas remain well defined without it.
}

void Topology::check_module_index(int m) const {
  MBUS_EXPECTS(m >= 0 && m < num_memories_, "module index out of range");
}

void Topology::check_bus_index(int b) const {
  MBUS_EXPECTS(b >= 0 && b < num_buses_, "bus index out of range");
}

std::vector<int> Topology::buses_of_memory(int m) const {
  check_module_index(m);
  std::vector<int> out;
  for (int b = 0; b < num_buses_; ++b) {
    if (memory_on_bus(m, b)) out.push_back(b);
  }
  return out;
}

std::vector<int> Topology::memories_on_bus(int b) const {
  check_bus_index(b);
  std::vector<int> out;
  for (int m = 0; m < num_memories_; ++m) {
    if (memory_on_bus(m, b)) out.push_back(m);
  }
  return out;
}

int Topology::memory_degree(int m) const {
  check_module_index(m);
  int degree = 0;
  for (int b = 0; b < num_buses_; ++b) {
    if (memory_on_bus(m, b)) ++degree;
  }
  return degree;
}

long Topology::count_connections() const {
  long total = static_cast<long>(num_buses_) * num_processors_;
  for (int m = 0; m < num_memories_; ++m) total += memory_degree(m);
  return total;
}

int Topology::count_bus_load(int b) const {
  check_bus_index(b);
  int load = num_processors_;
  for (int m = 0; m < num_memories_; ++m) {
    if (memory_on_bus(m, b)) ++load;
  }
  return load;
}

int Topology::count_fault_tolerance_degree() const {
  int min_degree = std::numeric_limits<int>::max();
  for (int m = 0; m < num_memories_; ++m) {
    min_degree = std::min(min_degree, memory_degree(m));
  }
  return min_degree - 1;
}

int Topology::accessible_memories(const std::vector<bool>& bus_failed) const {
  MBUS_EXPECTS(bus_failed.size() == static_cast<std::size_t>(num_buses_),
               "bus_failed must have one entry per bus");
  int accessible = 0;
  for (int m = 0; m < num_memories_; ++m) {
    for (int b = 0; b < num_buses_; ++b) {
      if (!bus_failed[static_cast<std::size_t>(b)] && memory_on_bus(m, b)) {
        ++accessible;
        break;
      }
    }
  }
  return accessible;
}

bool Topology::fully_accessible(const std::vector<bool>& bus_failed) const {
  return accessible_memories(bus_failed) == num_memories();
}

}  // namespace mbus
