#include "topology/factory.hpp"

#include "util/error.hpp"

namespace mbus {

std::unique_ptr<Topology> make_topology(const TopologySpec& spec) {
  if (spec.scheme == "full") {
    return std::make_unique<FullTopology>(spec.processors, spec.memories,
                                          spec.buses);
  }
  if (spec.scheme == "single") {
    return std::make_unique<SingleTopology>(
        SingleTopology::even(spec.processors, spec.memories, spec.buses));
  }
  if (spec.scheme == "partial-g") {
    return std::make_unique<PartialGTopology>(
        spec.processors, spec.memories, spec.buses, spec.groups);
  }
  if (spec.scheme == "k-classes") {
    const int k = spec.classes > 0 ? spec.classes : spec.buses;
    return std::make_unique<KClassTopology>(KClassTopology::even(
        spec.processors, spec.memories, spec.buses, k));
  }
  MBUS_EXPECTS(false, "unknown scheme: " + spec.scheme +
                          " (expected full | single | partial-g | "
                          "k-classes)");
  return nullptr;
}

std::vector<std::unique_ptr<Topology>> make_all_schemes(int processors,
                                                        int memories,
                                                        int buses) {
  std::vector<std::unique_ptr<Topology>> out;
  for (const char* scheme : {"full", "single", "partial-g", "k-classes"}) {
    TopologySpec spec;
    spec.scheme = scheme;
    spec.processors = processors;
    spec.memories = memories;
    spec.buses = buses;
    out.push_back(make_topology(spec));
  }
  return out;
}

}  // namespace mbus
