// Low-overhead metrics for the simulators, thread pool, and campaign
// harness (DESIGN.md §10 "Observability model").
//
// Three primitives, all registered by name in a `MetricsRegistry`:
//
//   * Counter   — monotonically increasing int64. Increments go to one of
//     a fixed set of cache-line-padded stripes chosen by a thread-local
//     index, so the hot path is a single relaxed fetch_add on a line the
//     thread effectively owns; stripes are summed on snapshot.
//   * Gauge     — a last-write-wins int64 level (worker counts, sizes).
//   * Histogram — fixed upper-bound buckets (`value <= bound`, plus an
//     implicit +inf bucket), striped like counters, with total count and
//     sum for mean/percentile estimates.
//
// Determinism contract: metrics that describe *work done* (requests
// granted, points attempted, flush counts) are bit-identical across
// thread counts and engine kinds for the same seed, because every
// increment corresponds to a deterministic unit of work and addition
// commutes. Only *timing* histograms (`*_us`) may vary run to run.
//
// Builds with -DMBUS_NO_OBS compile the whole layer down to no-op inline
// stubs: call sites keep compiling, snapshots are empty, and zero
// instructions land in hot paths.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mbus::obs {

#if defined(MBUS_NO_OBS)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Merged, point-in-time view of one histogram. `counts` has
/// `bounds.size() + 1` entries; the last is the +inf overflow bucket.
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  std::int64_t sum = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing quantile `q` in [0, 1]; the
  /// overflow bucket reports -1 ("beyond the last bound").
  std::int64_t quantile_bound(double q) const noexcept;
};

/// Merged view of every registered metric, in name order (std::map), so
/// serialization and comparison are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"mbus_metrics":1,"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"bounds":[...],"counts":[...],"count":N,
  /// "sum":S},...}}.
  std::string to_json() const;
};

/// Parse a to_json() document back (schema round-trip for tests and
/// external tooling). Returns false on malformed input.
bool snapshot_from_json(const std::string& text, MetricsSnapshot& out);

/// `after - before`, elementwise: the work done between two snapshots of
/// the same registry. Zero-delta counters and empty-delta histograms are
/// dropped (so merging a delta never registers names that did no work);
/// gauges are levels, not work, and are never part of a delta. This is
/// how a campaign worker process ships the metrics of one point back to
/// its supervisor (analysis/supervisor.hpp).
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

/// Human-readable summary table of a snapshot (counters, gauges, and
/// count/mean/p50/p99 per histogram) for end-of-run reporting.
std::string render_summary(const MetricsSnapshot& snapshot);

/// Microseconds on the monotonic clock since process start. 0 when the
/// layer is compiled out, so timing code folds away.
std::int64_t monotonic_us() noexcept;

namespace detail {
/// Append `s` to `out` as a quoted, escaped JSON string.
void append_json(std::string& out, std::string_view s);
}  // namespace detail

#if !defined(MBUS_NO_OBS)

namespace detail {
inline constexpr int kStripes = 16;  // power of two

struct alignas(64) Stripe {
  std::atomic<std::int64_t> value{0};
};

/// This thread's stripe index (assigned round-robin on first use).
int thread_stripe() noexcept;
}  // namespace detail

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::int64_t delta) noexcept {
    stripes_[detail::thread_stripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over stripes. Monotone and exact once writers are quiescent.
  std::int64_t value() const noexcept;
  void reset() noexcept;

 private:
  detail::Stripe stripes_[detail::kStripes];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are strictly ascending inclusive upper bounds; an implicit
  /// +inf bucket catches everything beyond the last. Throws
  /// InvalidArgument on an empty or non-ascending vector.
  explicit Histogram(std::vector<std::int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t value) noexcept { observe_many(value, 1); }
  /// Record `count` observations of `value` at once (bulk merge of a
  /// locally accumulated histogram — the engines' zero-hot-path-cost
  /// pattern). Negative or zero counts are ignored.
  void observe_many(std::int64_t value, std::int64_t count) noexcept;

  const std::vector<std::int64_t>& bounds() const noexcept {
    return bounds_;
  }
  HistogramSnapshot snapshot() const;
  /// Add another histogram's snapshot bucket-for-bucket (exact merge of
  /// work recorded in a different process). Throws InvalidArgument when
  /// the bounds differ.
  void merge(const HistogramSnapshot& delta);
  void reset() noexcept;

 private:
  struct StripeData {
    std::unique_ptr<std::atomic<std::int64_t>[]> buckets;
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
  };

  std::vector<std::int64_t> bounds_;
  std::unique_ptr<StripeData[]> stripes_;
};

/// Named metric registry. Registration (the name lookup) takes a mutex —
/// callers on hot paths resolve once and keep the reference; returned
/// references live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site
  /// writes to.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the
  /// same name return the existing histogram (bounds argument ignored).
  Histogram& histogram(std::string_view name,
                       const std::vector<std::int64_t>& bounds);

  MetricsSnapshot snapshot() const;
  /// Add a snapshot (typically a snapshot_delta shipped from a worker
  /// process) into this registry: counters add, histograms merge bucket
  /// exactly (registering unseen names with the delta's bounds), gauges
  /// are ignored. Zero-valued entries are skipped so a merge never
  /// registers names that did no work.
  void merge(const MetricsSnapshot& delta);
  /// Zero every metric (registrations survive). Callers must be
  /// quiescent — concurrent increments may straddle the reset.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the wall-clock (monotonic) duration of a scope into a timing
/// histogram, in microseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(&sink), start_(monotonic_us()) {}
  ~ScopedTimer() { sink_->observe(monotonic_us() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  std::int64_t start_;
};

#else  // MBUS_NO_OBS — inert stubs with the identical API surface.

class Counter {
 public:
  void add(std::int64_t) noexcept {}
  void increment() noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void observe(std::int64_t) noexcept {}
  void observe_many(std::int64_t, std::int64_t) noexcept {}
  HistogramSnapshot snapshot() const { return {}; }
  void merge(const HistogramSnapshot&) noexcept {}
  void reset() noexcept {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view, const std::vector<std::int64_t>&) {
    return histogram_;
  }
  MetricsSnapshot snapshot() const { return {}; }
  void merge(const MetricsSnapshot&) {}
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
};

#endif  // MBUS_NO_OBS

/// Shared bucket ladders for the built-in instrumentation (documented in
/// DESIGN.md §10 so external tooling can rely on them).
const std::vector<std::int64_t>& latency_us_bounds();      // 50us..1s
const std::vector<std::int64_t>& per_cycle_count_bounds();  // 0..64

}  // namespace mbus::obs
