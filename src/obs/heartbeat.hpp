// Periodic progress heartbeat for long-running campaigns.
//
// A `Heartbeat` owns one background thread that invokes a caller-supplied
// tick (typically: emit a `campaign.heartbeat` event with points
// done/total and an ETA) every `period_ms`. Shutdown ordering is the
// whole point of the class:
//
//   * the destructor (or stop()) wakes the thread immediately via its
//     condition variable and joins — it never waits out a period, so
//     SIGINT handling is never blocked on the emitter thread;
//   * a `CancellationToken` (optional) is polled at least every 100 ms:
//     once the token fires the thread exits on its own, even if the
//     owner has not reached the destructor yet;
//   * ticks run on the heartbeat thread with no lock held, so a slow
//     sink cannot deadlock stop()/destruction (stop() does wait for an
//     in-flight tick to return before joining — sinks must not block
//     forever, the same contract as any logging backend).
//
// With -DMBUS_NO_OBS the class compiles to an inert stub (no thread).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/shutdown.hpp"

namespace mbus::obs {

#if !defined(MBUS_NO_OBS)

class Heartbeat {
 public:
  /// Starts the thread. `tick(elapsed_ms)` fires every `period_ms`
  /// (>= 1) until stop()/destruction or until `cancel` (may be null)
  /// requests a stop.
  Heartbeat(std::int64_t period_ms, const CancellationToken* cancel,
            std::function<void(std::int64_t elapsed_ms)> tick);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Signal the thread and join it. Idempotent; returns promptly (the
  /// thread is woken, never waited out).
  void stop() noexcept;

 private:
  void loop();

  std::int64_t period_ms_;
  const CancellationToken* cancel_;
  std::function<void(std::int64_t)> tick_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

#else  // MBUS_NO_OBS

class Heartbeat {
 public:
  Heartbeat(std::int64_t, const CancellationToken*,
            std::function<void(std::int64_t)>) {}
  void stop() noexcept {}
};

#endif  // MBUS_NO_OBS

}  // namespace mbus::obs
