// Structured JSON-lines event log (the `obs/events` channel).
//
// Every line is one JSON object with reserved keys written first:
//
//   {"ts_us":152340,"seq":7,"run":"fault-campaign/12345",
//    "event":"campaign.point","scheme":"full","replication":3,"ok":true}
//
//   * ts_us — microseconds on the monotonic clock since process start
//     (never wall time, so lines are strictly ordered even across NTP
//     slews);
//   * seq   — a process-wide strictly increasing sequence number, the
//     tie-breaker when two events share a microsecond;
//   * run   — the run id set by the entry point (set_run_id), present on
//     every line so interleaved logs from several runs stay separable;
//   * event — the event name (dotted, like metric names).
//
// Everything after those is event-specific (point ids such as scheme /
// replication ride here). Emission is a no-op until a sink is opened, so
// instrumented library code never pays for an unused log; with
// -DMBUS_NO_OBS the emitter compiles out entirely.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mbus::obs {

/// One key/value pair of an event line. Implicit constructors let emit
/// sites write `{"scheme", scheme}, {"ok", true}, {"done", count}`.
struct EventField {
  enum class Kind { kInt, kDouble, kBool, kString };

  EventField(const char* key, std::int64_t value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  EventField(const char* key, int value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  EventField(const char* key, double value)
      : key(key), kind(Kind::kDouble), double_value(value) {}
  EventField(const char* key, bool value)
      : key(key), kind(Kind::kBool), bool_value(value) {}
  EventField(const char* key, const char* value)
      : key(key), kind(Kind::kString), string_value(value) {}
  EventField(const char* key, const std::string& value)
      : key(key), kind(Kind::kString), string_value(value) {}

  const char* key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;
};

#if !defined(MBUS_NO_OBS)

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide log the built-in instrumentation emits to.
  static EventLog& global();

  /// Open (truncate) `path` as the sink; throws InvalidArgument when the
  /// file cannot be created.
  void open(const std::string& path);
  /// Emit into a caller-owned stream instead of a file (tests). The
  /// stream must outlive the log or be closed first.
  void open_stream(std::ostream* out);
  /// Flush and detach the sink; emit becomes a no-op again.
  void close();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stamped onto every subsequent line as "run".
  void set_run_id(std::string run_id);

  /// Write one event line. No-op without a sink. Thread-safe; each line
  /// is written and flushed atomically under the log's mutex.
  void emit(const char* event, std::initializer_list<EventField> fields);

 private:
  mutable std::mutex mutex_;
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::string run_id_;
  std::int64_t seq_ = 0;
  std::atomic<bool> enabled_{false};
};

#else  // MBUS_NO_OBS

class EventLog {
 public:
  static EventLog& global();
  void open(const std::string&) {}
  void open_stream(std::ostream*) {}
  void close() {}
  bool enabled() const noexcept { return false; }
  void set_run_id(std::string) {}
  void emit(const char*, std::initializer_list<EventField>) {}
};

#endif  // MBUS_NO_OBS

/// Render one event line (without writing it) — the serialization the
/// log uses, exposed for schema tests.
std::string format_event_line(std::int64_t ts_us, std::int64_t seq,
                              std::string_view run_id, const char* event,
                              std::initializer_list<EventField> fields);

}  // namespace mbus::obs
