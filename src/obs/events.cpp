#include "obs/events.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus::obs {

std::string format_event_line(std::int64_t ts_us, std::int64_t seq,
                              std::string_view run_id, const char* event,
                              std::initializer_list<EventField> fields) {
  std::string line = cat("{\"ts_us\":", ts_us, ",\"seq\":", seq, ",\"run\":");
  detail::append_json(line, run_id);
  line += ",\"event\":";
  detail::append_json(line, event);
  for (const EventField& field : fields) {
    line += ',';
    detail::append_json(line, field.key);
    line += ':';
    switch (field.kind) {
      case EventField::Kind::kInt:
        line += cat(field.int_value);
        break;
      case EventField::Kind::kDouble: {
        // %.17g round-trips doubles exactly (same contract as the
        // checkpoint serializer).
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", field.double_value);
        line += buffer;
        break;
      }
      case EventField::Kind::kBool:
        line += field.bool_value ? "true" : "false";
        break;
      case EventField::Kind::kString:
        detail::append_json(line, field.string_value);
        break;
    }
  }
  line += '}';
  return line;
}

#if !defined(MBUS_NO_OBS)

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  file_.open(path, std::ios::binary | std::ios::trunc);
  MBUS_EXPECTS(file_.is_open(), cat("cannot open events file ", path));
  out_ = &file_;
  enabled_.store(true, std::memory_order_relaxed);
}

void EventLog::open_stream(std::ostream* out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_.close();
  out_ = out;
  enabled_.store(out != nullptr, std::memory_order_relaxed);
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  out_ = nullptr;
}

void EventLog::set_run_id(std::string run_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  run_id_ = std::move(run_id);
}

void EventLog::emit(const char* event,
                    std::initializer_list<EventField> fields) {
  if (!enabled()) return;
  const std::int64_t ts = monotonic_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr) return;  // closed between the check and the lock
  *out_ << format_event_line(ts, seq_++, run_id_, event, fields) << '\n';
  out_->flush();
}

#else  // MBUS_NO_OBS

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

#endif  // MBUS_NO_OBS

}  // namespace mbus::obs
