#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus::obs {

namespace detail {

void append_json(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace detail

std::int64_t HistogramSnapshot::quantile_bound(double q) const noexcept {
  if (count == 0 || counts.empty()) return 0;
  const double target = q * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < bounds.size() ? bounds[i] : -1;
    }
  }
  return -1;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"mbus_metrics\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    detail::append_json(out, name);
    out += cat(":", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    detail::append_json(out, name);
    out += cat(":", value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    detail::append_json(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += cat(hist.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i != 0) out += ',';
      out += cat(hist.counts[i]);
    }
    out += cat("],\"count\":", hist.count, ",\"sum\":", hist.sum, "}");
  }
  out += "}}";
  return out;
}

namespace {

/// Minimal cursor helpers for snapshot_from_json — the document is our
/// own writer's output, so the parser only has to accept that shape
/// (and reject everything else).
void skip_ws(const std::string& s, std::size_t& pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
          s[pos] == '\r')) {
    ++pos;
  }
}

bool expect_char(const std::string& s, std::size_t& pos, char c) {
  skip_ws(s, pos);
  if (pos >= s.size() || s[pos] != c) return false;
  ++pos;
  return true;
}

bool parse_string(const std::string& s, std::size_t& pos, std::string& out) {
  skip_ws(s, pos);
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < s.size() && s[pos] != '"') {
    char c = s[pos++];
    if (c == '\\') {
      if (pos >= s.size()) return false;
      const char escape = s[pos++];
      switch (escape) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          c = static_cast<char>(
              std::strtol(s.substr(pos, 4).c_str(), nullptr, 16));
          pos += 4;
          break;
        }
        default:
          return false;
      }
    }
    out += c;
  }
  if (pos >= s.size()) return false;
  ++pos;  // closing quote
  return true;
}

bool parse_int(const std::string& s, std::size_t& pos, std::int64_t& out) {
  skip_ws(s, pos);
  const char* begin = s.c_str() + pos;
  char* end = nullptr;
  out = std::strtoll(begin, &end, 10);
  if (end == begin) return false;
  pos += static_cast<std::size_t>(end - begin);
  return true;
}

bool parse_int_array(const std::string& s, std::size_t& pos,
                     std::vector<std::int64_t>& out) {
  if (!expect_char(s, pos, '[')) return false;
  out.clear();
  skip_ws(s, pos);
  if (pos < s.size() && s[pos] == ']') {
    ++pos;
    return true;
  }
  for (;;) {
    std::int64_t value = 0;
    if (!parse_int(s, pos, value)) return false;
    out.push_back(value);
    skip_ws(s, pos);
    if (pos >= s.size()) return false;
    if (s[pos] == ']') {
      ++pos;
      return true;
    }
    if (s[pos] != ',') return false;
    ++pos;
  }
}

/// Parses {"name":int,...} into `out`.
bool parse_int_map(const std::string& s, std::size_t& pos,
                   std::map<std::string, std::int64_t>& out) {
  if (!expect_char(s, pos, '{')) return false;
  skip_ws(s, pos);
  if (pos < s.size() && s[pos] == '}') {
    ++pos;
    return true;
  }
  for (;;) {
    std::string name;
    std::int64_t value = 0;
    if (!parse_string(s, pos, name) || !expect_char(s, pos, ':') ||
        !parse_int(s, pos, value)) {
      return false;
    }
    out[name] = value;
    skip_ws(s, pos);
    if (pos >= s.size()) return false;
    if (s[pos] == '}') {
      ++pos;
      return true;
    }
    if (s[pos] != ',') return false;
    ++pos;
  }
}

}  // namespace

bool snapshot_from_json(const std::string& text, MetricsSnapshot& out) {
  MetricsSnapshot parsed;
  std::size_t pos = 0;
  std::string key;
  std::int64_t version = 0;
  if (!expect_char(text, pos, '{') || !parse_string(text, pos, key) ||
      key != "mbus_metrics" || !expect_char(text, pos, ':') ||
      !parse_int(text, pos, version) || version != 1) {
    return false;
  }
  if (!expect_char(text, pos, ',') || !parse_string(text, pos, key) ||
      key != "counters" || !expect_char(text, pos, ':') ||
      !parse_int_map(text, pos, parsed.counters)) {
    return false;
  }
  if (!expect_char(text, pos, ',') || !parse_string(text, pos, key) ||
      key != "gauges" || !expect_char(text, pos, ':') ||
      !parse_int_map(text, pos, parsed.gauges)) {
    return false;
  }
  if (!expect_char(text, pos, ',') || !parse_string(text, pos, key) ||
      key != "histograms" || !expect_char(text, pos, ':') ||
      !expect_char(text, pos, '{')) {
    return false;
  }
  skip_ws(text, pos);
  if (pos < text.size() && text[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      std::string name;
      HistogramSnapshot hist;
      std::string field;
      if (!parse_string(text, pos, name) || !expect_char(text, pos, ':') ||
          !expect_char(text, pos, '{') || !parse_string(text, pos, field) ||
          field != "bounds" || !expect_char(text, pos, ':') ||
          !parse_int_array(text, pos, hist.bounds) ||
          !expect_char(text, pos, ',') || !parse_string(text, pos, field) ||
          field != "counts" || !expect_char(text, pos, ':') ||
          !parse_int_array(text, pos, hist.counts) ||
          !expect_char(text, pos, ',') || !parse_string(text, pos, field) ||
          field != "count" || !expect_char(text, pos, ':') ||
          !parse_int(text, pos, hist.count) ||
          !expect_char(text, pos, ',') || !parse_string(text, pos, field) ||
          field != "sum" || !expect_char(text, pos, ':') ||
          !parse_int(text, pos, hist.sum) || !expect_char(text, pos, '}')) {
        return false;
      }
      if (hist.counts.size() != hist.bounds.size() + 1) return false;
      parsed.histograms[name] = std::move(hist);
      skip_ws(text, pos);
      if (pos >= text.size()) return false;
      if (text[pos] == '}') {
        ++pos;
        break;
      }
      if (text[pos] != ',') return false;
      ++pos;
    }
  }
  if (!expect_char(text, pos, '}')) return false;
  out = std::move(parsed);
  return true;
}

std::string render_summary(const MetricsSnapshot& snapshot) {
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    return kEnabled ? "observability: no metrics recorded\n"
                    : "observability compiled out (MBUS_NO_OBS)\n";
  }
  std::size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    width = std::max(width, name.size());
  }

  std::string out = "observability summary\n";
  if (!snapshot.counters.empty()) {
    out += "  counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out += cat("    ", pad_right(name, width), "  ", value, "\n");
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "  gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out += cat("    ", pad_right(name, width), "  ", value, "\n");
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "  histograms (count / mean / p50 / p99):\n";
    for (const auto& [name, hist] : snapshot.histograms) {
      const std::int64_t p50 = hist.quantile_bound(0.50);
      const std::int64_t p99 = hist.quantile_bound(0.99);
      out += cat("    ", pad_right(name, width), "  n=", hist.count,
                 " mean=", fmt_fixed(hist.mean(), 1),
                 " p50<=", p50 < 0 ? std::string("inf") : cat(p50),
                 " p99<=", p99 < 0 ? std::string("inf") : cat(p99), "\n");
    }
  }
  return out;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    std::int64_t prior = 0;
    if (const auto found = before.counters.find(name);
        found != before.counters.end()) {
      prior = found->second;
    }
    if (value - prior != 0) delta.counters[name] = value - prior;
  }
  for (const auto& [name, hist] : after.histograms) {
    HistogramSnapshot d = hist;
    if (const auto found = before.histograms.find(name);
        found != before.histograms.end() &&
        found->second.bounds == hist.bounds) {
      const HistogramSnapshot& prior = found->second;
      for (std::size_t b = 0;
           b < d.counts.size() && b < prior.counts.size(); ++b) {
        d.counts[b] -= prior.counts[b];
      }
      d.count -= prior.count;
      d.sum -= prior.sum;
    }
    if (d.count != 0) delta.histograms[name] = std::move(d);
  }
  return delta;
}

std::int64_t monotonic_us() noexcept {
#if defined(MBUS_NO_OBS)
  return 0;
#else
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
#endif
}

#if !defined(MBUS_NO_OBS)

namespace detail {

int thread_stripe() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(index & (kStripes - 1));
}

}  // namespace detail

std::int64_t Counter::value() const noexcept {
  std::int64_t total = 0;
  for (const detail::Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (detail::Stripe& stripe : stripes_) {
    stripe.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  MBUS_EXPECTS(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MBUS_EXPECTS(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly ascending");
  }
  stripes_ = std::make_unique<StripeData[]>(detail::kStripes);
  const std::size_t buckets = bounds_.size() + 1;
  for (int s = 0; s < detail::kStripes; ++s) {
    stripes_[s].buckets =
        std::make_unique<std::atomic<std::int64_t>[]>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      stripes_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe_many(std::int64_t value,
                             std::int64_t count) noexcept {
  if (count <= 0) return;
  std::size_t bucket = bounds_.size();  // +inf by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  StripeData& stripe = stripes_[detail::thread_stripe()];
  stripe.buckets[bucket].fetch_add(count, std::memory_order_relaxed);
  stripe.count.fetch_add(count, std::memory_order_relaxed);
  stripe.sum.fetch_add(value * count, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (int s = 0; s < detail::kStripes; ++s) {
    const StripeData& stripe = stripes_[s];
    for (std::size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += stripe.count.load(std::memory_order_relaxed);
    out.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::merge(const HistogramSnapshot& delta) {
  MBUS_EXPECTS(delta.bounds == bounds_,
               "histogram merge requires identical bucket bounds");
  if (delta.count <= 0) return;
  StripeData& stripe = stripes_[detail::thread_stripe()];
  const std::size_t buckets =
      std::min(delta.counts.size(), bounds_.size() + 1);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (delta.counts[b] != 0) {
      stripe.buckets[b].fetch_add(delta.counts[b],
                                  std::memory_order_relaxed);
    }
  }
  stripe.count.fetch_add(delta.count, std::memory_order_relaxed);
  stripe.sum.fetch_add(delta.sum, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (int s = 0; s < detail::kStripes; ++s) {
    StripeData& stripe = stripes_[s];
    for (std::size_t b = 0; b < bounds_.size() + 1; ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = counters_.find(name);
  if (found != counters_.end()) return *found->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = gauges_.find(name);
  if (found != gauges_.end()) return *found->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, const std::vector<std::int64_t>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = histograms_.find(name);
  if (found != histograms_.end()) return *found->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram->snapshot();
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

void MetricsRegistry::merge(const MetricsSnapshot& delta) {
  for (const auto& [name, value] : delta.counters) {
    if (value != 0) counter(name).add(value);
  }
  for (const auto& [name, hist] : delta.histograms) {
    if (hist.count <= 0 || hist.bounds.empty()) continue;
    histogram(name, hist.bounds).merge(hist);
  }
}

#else  // MBUS_NO_OBS

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

#endif  // MBUS_NO_OBS

const std::vector<std::int64_t>& latency_us_bounds() {
  static const std::vector<std::int64_t> bounds = {
      50,     100,    250,    500,     1000,    2500,   5000,
      10000,  25000,  50000,  100000,  250000,  500000, 1000000};
  return bounds;
}

const std::vector<std::int64_t>& per_cycle_count_bounds() {
  static const std::vector<std::int64_t> bounds = {0, 1, 2,  3,  4,  6, 8,
                                                   12, 16, 24, 32, 48, 64};
  return bounds;
}

}  // namespace mbus::obs
