#include "obs/heartbeat.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

#if !defined(MBUS_NO_OBS)

namespace mbus::obs {

Heartbeat::Heartbeat(std::int64_t period_ms, const CancellationToken* cancel,
                     std::function<void(std::int64_t)> tick)
    : period_ms_(period_ms), cancel_(cancel), tick_(std::move(tick)) {
  MBUS_EXPECTS(period_ms_ >= 1, "heartbeat period must be >= 1 ms");
  MBUS_EXPECTS(tick_ != nullptr, "heartbeat needs a tick callback");
  thread_ = std::thread([this] { loop(); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Heartbeat::loop() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  Clock::time_point deadline = start + std::chrono::milliseconds(period_ms_);
  // Wake at least every 100 ms so a fired CancellationToken (which has no
  // way to notify our condition variable) is honored promptly even with
  // long heartbeat periods.
  const auto slice =
      std::chrono::milliseconds(std::min<std::int64_t>(period_ms_, 100));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait_for(lock, slice, [this] { return stop_; });
    if (stop_) return;
    if (cancel_ != nullptr && cancel_->stop_requested()) return;
    const Clock::time_point now = Clock::now();
    if (now < deadline) continue;
    deadline = now + std::chrono::milliseconds(period_ms_);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start)
            .count();
    lock.unlock();
    tick_(static_cast<std::int64_t>(elapsed_ms));
    lock.lock();
    if (stop_) return;
  }
}

}  // namespace mbus::obs

#endif  // MBUS_NO_OBS
