#include "obs/obs_cli.hpp"

#include <fstream>
#include <iostream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace mbus::obs {

void add_observability_options(CliParser& parser) {
  parser
      .add_string("metrics-out", "",
                  "write a metrics-registry JSON snapshot to this file at "
                  "exit")
      .add_string("events-out", "",
                  "stream structured JSON-lines events (heartbeats, point "
                  "completions) to this file")
      .add_flag("obs-summary",
                "print the observability summary table at the end of the "
                "run");
}

ObservabilityScope::ObservabilityScope(const CliParser& cli,
                                       std::string run_id)
    : metrics_path_(cli.get_string("metrics-out")),
      summary_(cli.get_flag("obs-summary")) {
  const std::string events_path = cli.get_string("events-out");
  if (!events_path.empty()) {
    EventLog& log = EventLog::global();
    log.open(events_path);
    log.set_run_id(run_id);
    log.emit("run.start", {});
    events_open_ = true;
  }
}

ObservabilityScope::~ObservabilityScope() {
  if (events_open_) {
    EventLog::global().emit("run.end", {});
    EventLog::global().close();
  }
  const bool any_output = events_open_ || !metrics_path_.empty();
  if (!any_output && !summary_) return;
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_, std::ios::binary | std::ios::trunc);
    if (out.is_open()) {
      out << snapshot.to_json() << '\n';
    } else {
      std::cerr << "warning: cannot write metrics to " << metrics_path_
                << "\n";
    }
  }
  if (summary_ || any_output) std::cout << render_summary(snapshot);
}

}  // namespace mbus::obs
