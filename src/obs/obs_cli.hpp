// CLI plumbing for the observability layer, shared by every bench and
// example binary:
//
//   --metrics-out <file.json>   write a MetricsRegistry snapshot at exit
//   --events-out <file.jsonl>   stream structured events while running
//   --obs-summary               print the human-readable summary table
//
// Usage in a main():
//
//   add_observability_options(cli);
//   if (!cli.parse(argc, argv)) return 0;
//   ObservabilityScope obs(cli, cat("my-bench/", seed));
//   ... run ...
//   // scope exit: run.end event, metrics JSON written, summary printed
//
// The scope is exception- and early-return-safe: outputs are produced in
// the destructor, best-effort (an unwritable metrics path is reported on
// stderr, never thrown out of a destructor).
#pragma once

#include <string>

#include "util/cli.hpp"

namespace mbus::obs {

/// Register --metrics-out / --events-out / --obs-summary on `parser`.
void add_observability_options(CliParser& parser);

class ObservabilityScope {
 public:
  /// Opens the global event sink (when --events-out was given), stamps
  /// `run_id` onto every event line, and emits `run.start`. Throws
  /// InvalidArgument when the events file cannot be created.
  ObservabilityScope(const CliParser& cli, std::string run_id);

  /// Emits `run.end`, closes the event sink, writes the metrics snapshot
  /// (when --metrics-out was given), and prints the summary table to
  /// stdout when --obs-summary or any obs output was requested.
  ~ObservabilityScope();

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  std::string metrics_path_;
  bool events_open_ = false;
  bool summary_ = false;
};

}  // namespace mbus::obs
