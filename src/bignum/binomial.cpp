#include "bignum/binomial.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mbus {

BigUint binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigUint();
  if (k > n - k) k = n - k;  // symmetry: fewer multiplications
  BigUint result(1);
  // result stays integral after each division: C(n,j) = C(n,j-1)·(n-j+1)/j.
  for (std::uint64_t j = 1; j <= k; ++j) {
    result = result * BigUint(n - j + 1) / BigUint(j);
  }
  return result;
}

std::vector<BigUint> binomial_row(std::uint64_t n) {
  std::vector<BigUint> row;
  row.reserve(n + 1);
  row.emplace_back(std::uint64_t{1});
  for (std::uint64_t j = 1; j <= n; ++j) {
    row.push_back(row.back() * BigUint(n - j + 1) / BigUint(j));
  }
  return row;
}

BigUint factorial(std::uint64_t n) {
  BigUint result(1);
  for (std::uint64_t j = 2; j <= n; ++j) result *= BigUint(j);
  return result;
}

BigUint falling_factorial(std::uint64_t n, std::uint64_t k) {
  MBUS_EXPECTS(k <= n, "falling factorial requires k <= n");
  BigUint result(1);
  for (std::uint64_t j = 0; j < k; ++j) result *= BigUint(n - j);
  return result;
}

double log_factorial(std::uint64_t n) {
  // Covers every N the analysis layer evaluates (paper tables stop at
  // N = 1024); larger arguments fall through to lgamma directly.
  constexpr std::uint64_t kCached = 4096;
  static const std::vector<double> table = [] {
    std::vector<double> t(kCached + 1);
    for (std::uint64_t i = 0; i <= kCached; ++i) {
      t[i] = std::lgamma(static_cast<double>(i) + 1.0);
    }
    return t;
  }();
  if (n <= kCached) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial_double(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  return std::exp(log_binomial(n, k));
}

}  // namespace mbus
