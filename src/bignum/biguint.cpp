#include "bignum/biguint.hpp"

#include <ostream>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mbus {

namespace {
constexpr std::uint64_t kLimbBase = 1ULL << 32;
}  // namespace

BigUint::BigUint(std::uint64_t value) {
  if (value == 0) return;
  limbs_.push_back(static_cast<Limb>(value & 0xFFFFFFFFULL));
  if (value >> 32) limbs_.push_back(static_cast<Limb>(value >> 32));
}

void BigUint::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_decimal(std::string_view text) {
  MBUS_EXPECTS(!text.empty(), "empty decimal string");
  BigUint result;
  // Consume nine digits at a time: result = result*10^9 + chunk.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t take = std::min<std::size_t>(9, text.size() - pos);
    std::uint32_t chunk = 0;
    std::uint32_t scale = 1;
    for (std::size_t i = 0; i < take; ++i) {
      const char c = text[pos + i];
      MBUS_EXPECTS(c >= '0' && c <= '9',
                   "invalid character in decimal string");
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      scale *= 10;
    }
    result = result * BigUint(scale) + BigUint(chunk);
    pos += take;
  }
  return result;
}

BigUint BigUint::power_of_two(std::size_t exponent) {
  std::vector<Limb> limbs(exponent / kLimbBits + 1, 0);
  limbs.back() = Limb{1} << (exponent % kLimbBits);
  return BigUint(std::move(limbs));
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const int top_bits = std::bit_width(limbs_.back());
  return (limbs_.size() - 1) * kLimbBits + static_cast<std::size_t>(top_bits);
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1U;
}

std::uint64_t BigUint::to_u64() const {
  if (limbs_.empty()) return 0;
  if (limbs_.size() > 2) {
    throw DomainError("BigUint does not fit in 64 bits: " + to_decimal());
  }
  std::uint64_t value = limbs_[0];
  if (limbs_.size() == 2) value |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return value;
}

double BigUint::to_double() const noexcept {
  if (limbs_.empty()) return 0.0;
  const std::size_t bits = bit_length();
  if (bits <= 64) {
    std::uint64_t v = limbs_[0];
    if (limbs_.size() == 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return static_cast<double>(v);
  }
  // Extract the top 64 bits and remember whether anything below them is
  // set, so the final double rounding can honour round-to-nearest-even.
  const std::size_t shift = bits - 64;
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (bit(shift + i)) top |= (1ULL << i);
  }
  bool sticky = false;
  for (std::size_t i = 0; i < shift && !sticky; ++i) sticky = bit(i);
  double mantissa = static_cast<double>(top);
  if (sticky) {
    // Nudge the conversion so a value strictly between representable
    // doubles does not round down spuriously; one ulp at 2^64 scale is
    // far below our accuracy needs (exact checks use rationals anyway).
    mantissa = std::nextafter(mantissa, std::numeric_limits<double>::max());
  }
  return std::ldexp(mantissa, static_cast<int>(shift));
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  BigUint value = *this;
  std::string out;
  constexpr Limb kChunk = 1000000000;  // 10^9 fits a limb
  while (!value.is_zero()) {
    DivMod dm = divmod_small(value, kChunk);
    std::uint32_t digits =
        dm.remainder.is_zero() ? 0U : dm.remainder.limbs_[0];
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + digits % 10));
      digits /= 10;
    }
    value = std::move(dm.quotient);
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

int BigUint::compare(const BigUint& a, const BigUint& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigUint::Limb> BigUint::add_limbs(const std::vector<Limb>& a,
                                              const std::vector<Limb>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<Limb> out;
  out.reserve(longer.size() + 1);
  WideLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    WideLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<Limb>(sum & 0xFFFFFFFFULL));
    carry = sum >> kLimbBits;
  }
  if (carry) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigUint::Limb> BigUint::sub_limbs(const std::vector<Limb>& a,
                                              const std::vector<Limb>& b) {
  std::vector<Limb> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(diff));
  }
  MBUS_ASSERT(borrow == 0, "unsigned subtraction underflow");
  return out;
}

BigUint operator+(const BigUint& a, const BigUint& b) {
  return BigUint(BigUint::add_limbs(a.limbs_, b.limbs_));
}

BigUint operator-(const BigUint& a, const BigUint& b) {
  if (BigUint::compare(a, b) < 0) {
    throw DomainError("BigUint subtraction would be negative");
  }
  return BigUint(BigUint::sub_limbs(a.limbs_, b.limbs_));
}

std::vector<BigUint::Limb> BigUint::mul_schoolbook(
    const std::vector<Limb>& a, const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    WideLimb carry = 0;
    const WideLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      WideLimb cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xFFFFFFFFULL);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry) {
      WideLimb cur = out[k] + carry;
      out[k] = static_cast<Limb>(cur & 0xFFFFFFFFULL);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  return out;
}

BigUint BigUint::low_limbs(std::size_t count) const {
  count = std::min(count, limbs_.size());
  return BigUint(std::vector<Limb>(limbs_.begin(),
                                   limbs_.begin() + static_cast<long>(count)));
}

BigUint BigUint::high_limbs(std::size_t from) const {
  if (from >= limbs_.size()) return BigUint();
  return BigUint(std::vector<Limb>(limbs_.begin() + static_cast<long>(from),
                                   limbs_.end()));
}

BigUint BigUint::shifted_left_limbs(std::size_t count) const {
  if (is_zero()) return BigUint();
  std::vector<Limb> out(count, 0);
  out.insert(out.end(), limbs_.begin(), limbs_.end());
  return BigUint(std::move(out));
}

BigUint BigUint::mul_karatsuba(const BigUint& a, const BigUint& b) {
  const std::size_t na = a.limbs_.size();
  const std::size_t nb = b.limbs_.size();
  if (std::min(na, nb) < kKaratsubaThreshold) {
    return BigUint(mul_schoolbook(a.limbs_, b.limbs_));
  }
  const std::size_t half = (std::max(na, nb) + 1) / 2;
  // a = a1·R + a0, b = b1·R + b0 where R = 2^(32·half).
  const BigUint a0 = a.low_limbs(half);
  const BigUint a1 = a.high_limbs(half);
  const BigUint b0 = b.low_limbs(half);
  const BigUint b1 = b.high_limbs(half);

  const BigUint z0 = mul_karatsuba(a0, b0);
  const BigUint z2 = mul_karatsuba(a1, b1);
  const BigUint z1 = mul_karatsuba(a0 + a1, b0 + b1) - z0 - z2;

  return z2.shifted_left_limbs(2 * half) + z1.shifted_left_limbs(half) + z0;
}

BigUint BigUint::multiply_schoolbook(const BigUint& a, const BigUint& b) {
  return BigUint(mul_schoolbook(a.limbs_, b.limbs_));
}

BigUint BigUint::multiply_karatsuba(const BigUint& a, const BigUint& b) {
  return mul_karatsuba(a, b);
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint();
  if (std::min(a.limbs_.size(), b.limbs_.size()) >=
      BigUint::kKaratsubaThreshold) {
    return BigUint::mul_karatsuba(a, b);
  }
  return BigUint(BigUint::mul_schoolbook(a.limbs_, b.limbs_));
}

BigUint::DivMod BigUint::divmod_small(const BigUint& numerator,
                                      Limb denominator) {
  MBUS_ASSERT(denominator != 0, "division by zero limb");
  std::vector<Limb> quotient(numerator.limbs_.size(), 0);
  WideLimb remainder = 0;
  for (std::size_t i = numerator.limbs_.size(); i-- > 0;) {
    const WideLimb cur = (remainder << kLimbBits) | numerator.limbs_[i];
    quotient[i] = static_cast<Limb>(cur / denominator);
    remainder = cur % denominator;
  }
  return DivMod{BigUint(std::move(quotient)),
                BigUint(static_cast<std::uint64_t>(remainder))};
}

BigUint::DivMod BigUint::divmod_knuth(const BigUint& numerator,
                                      const BigUint& denominator) {
  // Precondition: denominator has >= 2 limbs and numerator >= denominator.
  const int shift =
      std::countl_zero(denominator.limbs_.back());
  const BigUint u = numerator.shifted_left(static_cast<std::size_t>(shift));
  const BigUint v = denominator.shifted_left(static_cast<std::size_t>(shift));
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<Limb> un = u.limbs_;
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<Limb>& vn = v.limbs_;
  std::vector<Limb> q(m + 1, 0);

  const WideLimb v_top = vn[n - 1];
  const WideLimb v_second = n >= 2 ? vn[n - 2] : 0;

  for (std::size_t j = m + 1; j-- > 0;) {
    const WideLimb numer =
        (static_cast<WideLimb>(un[j + n]) << kLimbBits) | un[j + n - 1];
    WideLimb qhat = numer / v_top;
    WideLimb rhat = numer % v_top;
    while (qhat >= kLimbBase ||
           qhat * v_second >
               ((rhat << kLimbBits) | (j + n >= 2 ? un[j + n - 2] : 0))) {
      --qhat;
      rhat += v_top;
      if (rhat >= kLimbBase) break;
    }
    // Multiply-subtract qhat*v from un[j .. j+n].
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const WideLimb product = qhat * vn[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(un[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(un[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    bool negative = diff < 0;
    if (negative) diff += static_cast<std::int64_t>(kLimbBase);
    un[j + n] = static_cast<Limb>(diff);

    if (negative) {
      // qhat was one too large; add v back once.
      --qhat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const WideLimb sum = static_cast<WideLimb>(un[i + j]) + vn[i] +
                             add_carry;
        un[i + j] = static_cast<Limb>(sum & 0xFFFFFFFFULL);
        add_carry = sum >> kLimbBits;
      }
      un[j + n] = static_cast<Limb>(un[j + n] + add_carry);
    }
    q[j] = static_cast<Limb>(qhat);
  }

  un.resize(n);
  BigUint remainder = BigUint(std::move(un))
                          .shifted_right(static_cast<std::size_t>(shift));
  return DivMod{BigUint(std::move(q)), std::move(remainder)};
}

BigUint::DivMod BigUint::divmod(const BigUint& numerator,
                                const BigUint& denominator) {
  if (denominator.is_zero()) {
    throw DomainError("BigUint division by zero");
  }
  if (compare(numerator, denominator) < 0) {
    return DivMod{BigUint(), numerator};
  }
  if (denominator.limbs_.size() == 1) {
    return divmod_small(numerator, denominator.limbs_[0]);
  }
  return divmod_knuth(numerator, denominator);
}

BigUint operator/(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).quotient;
}

BigUint operator%(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).remainder;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  *this = *this + rhs;
  return *this;
}
BigUint& BigUint::operator-=(const BigUint& rhs) {
  *this = *this - rhs;
  return *this;
}
BigUint& BigUint::operator*=(const BigUint& rhs) {
  *this = *this * rhs;
  return *this;
}
BigUint& BigUint::operator/=(const BigUint& rhs) {
  *this = *this / rhs;
  return *this;
}
BigUint& BigUint::operator%=(const BigUint& rhs) {
  *this = *this % rhs;
  return *this;
}

BigUint BigUint::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  std::vector<Limb> out(limb_shift, 0);
  if (bit_shift == 0) {
    out.insert(out.end(), limbs_.begin(), limbs_.end());
  } else {
    Limb carry = 0;
    for (const Limb limb : limbs_) {
      out.push_back(static_cast<Limb>((limb << bit_shift) | carry));
      carry = static_cast<Limb>(limb >> (kLimbBits - bit_shift));
    }
    if (carry) out.push_back(carry);
  }
  return BigUint(std::move(out));
}

BigUint BigUint::shifted_right(std::size_t bits) const {
  if (is_zero()) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return BigUint();
  const std::size_t bit_shift = bits % kLimbBits;
  std::vector<Limb> out(limbs_.begin() + static_cast<long>(limb_shift),
                        limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<Limb>(out[i] >> bit_shift);
      if (i + 1 < out.size()) {
        out[i] |= static_cast<Limb>(out[i + 1] << (kLimbBits - bit_shift));
      }
    }
  }
  return BigUint(std::move(out));
}

BigUint BigUint::pow(std::uint64_t exponent) const {
  BigUint base = *this;
  BigUint result(1);
  while (exponent > 0) {
    if (exponent & 1ULL) result *= base;
    exponent >>= 1;
    if (exponent > 0) base *= base;
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  // Binary GCD: strip common factors of two, then subtract-and-shift.
  std::size_t shift = 0;
  while (!a.bit(0) && !b.bit(0)) {
    a = a.shifted_right(1);
    b = b.shifted_right(1);
    ++shift;
  }
  while (!a.bit(0)) a = a.shifted_right(1);
  while (!b.is_zero()) {
    while (!b.bit(0)) b = b.shifted_right(1);
    if (compare(a, b) > 0) std::swap(a, b);
    b = b - a;
  }
  return a.shifted_left(shift);
}

std::size_t BigUint::decimal_digits() const {
  return to_decimal().size();
}

std::ostream& operator<<(std::ostream& os, const BigUint& value) {
  return os << value.to_decimal();
}

}  // namespace mbus
