// Arbitrary-precision unsigned integers.
//
// Why hand-rolled: the closed-form bandwidth expressions of Chen & Sheu
// involve sums of C(N,i)·X^i·(1−X)^{N−i} terms; C(1024,512) alone has
// 307 decimal digits, so exact cross-validation of the double-precision
// evaluation path needs true big integers, and the environment is offline
// (no GMP). The representation is a little-endian vector of 32-bit limbs
// with 64-bit intermediates, normalized so the most significant limb is
// nonzero (zero is the empty vector).
//
// Multiplication uses schoolbook below a threshold and Karatsuba above it;
// division is Knuth's Algorithm D. All operations are exact or throw.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mbus {

class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a machine integer.
  BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor)
                                 // intentional: arithmetic mixes freely

  /// Parse a non-empty decimal string (digits only, no sign, no spaces).
  /// Throws InvalidArgument on any other input.
  static BigUint from_decimal(std::string_view text);

  /// 2^exponent.
  static BigUint power_of_two(std::size_t exponent);

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_one() const noexcept {
    return limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;

  /// Value of bit `i` (false beyond bit_length()).
  bool bit(std::size_t i) const noexcept;

  /// True when the value fits in a std::uint64_t.
  bool fits_u64() const noexcept { return limbs_.size() <= 2; }

  /// Convert to uint64; throws DomainError if the value does not fit.
  std::uint64_t to_u64() const;

  /// Nearest double (round-to-nearest on the top 54 bits, then scaled);
  /// returns +inf when the exponent exceeds the double range.
  double to_double() const noexcept;

  /// Decimal rendering.
  std::string to_decimal() const;

  // -- comparison ---------------------------------------------------------
  /// Three-way comparison: negative, zero, or positive.
  static int compare(const BigUint& a, const BigUint& b) noexcept;

  friend bool operator==(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) >= 0;
  }

  // -- arithmetic ---------------------------------------------------------
  friend BigUint operator+(const BigUint& a, const BigUint& b);
  /// Throws DomainError if b > a (unsigned subtraction cannot go negative).
  friend BigUint operator-(const BigUint& a, const BigUint& b);
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  /// Quotient; throws DomainError on division by zero.
  friend BigUint operator/(const BigUint& a, const BigUint& b);
  /// Remainder; throws DomainError on division by zero.
  friend BigUint operator%(const BigUint& a, const BigUint& b);

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator/=(const BigUint& rhs);
  BigUint& operator%=(const BigUint& rhs);

  /// Quotient and remainder in one pass (defined after the class body).
  struct DivMod;
  static DivMod divmod(const BigUint& numerator, const BigUint& denominator);

  /// Left shift by `bits`.
  BigUint shifted_left(std::size_t bits) const;
  /// Logical right shift by `bits`.
  BigUint shifted_right(std::size_t bits) const;

  /// this^exponent via square-and-multiply (0^0 == 1 by convention).
  BigUint pow(std::uint64_t exponent) const;

  /// Greatest common divisor (binary GCD; gcd(0,0) == 0).
  static BigUint gcd(BigUint a, BigUint b);

  /// Number of decimal digits (1 for zero).
  std::size_t decimal_digits() const;

  /// Testing hooks: force a particular multiplication algorithm.
  static BigUint multiply_schoolbook(const BigUint& a, const BigUint& b);
  static BigUint multiply_karatsuba(const BigUint& a, const BigUint& b);

 private:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr int kLimbBits = 32;
  static constexpr std::size_t kKaratsubaThreshold = 32;  // limbs

  explicit BigUint(std::vector<Limb> limbs) : limbs_(std::move(limbs)) {
    normalize();
  }

  void normalize() noexcept;

  static std::vector<Limb> add_limbs(const std::vector<Limb>& a,
                                     const std::vector<Limb>& b);
  // Requires a >= b elementwise as numbers.
  static std::vector<Limb> sub_limbs(const std::vector<Limb>& a,
                                     const std::vector<Limb>& b);
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b);
  static BigUint mul_karatsuba(const BigUint& a, const BigUint& b);

  /// Knuth Algorithm D. `denominator` must be nonzero.
  static DivMod divmod_knuth(const BigUint& numerator,
                             const BigUint& denominator);
  /// Fast path: divide by a single limb.
  static DivMod divmod_small(const BigUint& numerator, Limb denominator);

  BigUint low_limbs(std::size_t count) const;   // limbs [0, count)
  BigUint high_limbs(std::size_t from) const;   // limbs [from, size)
  BigUint shifted_left_limbs(std::size_t count) const;

  std::vector<Limb> limbs_;  // little-endian, no trailing zero limbs
};

struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

/// Stream insertion (decimal form) — handy in logs and gtest output.
std::ostream& operator<<(std::ostream& os, const BigUint& value);

}  // namespace mbus
