// Exact binomial coefficients and factorials over BigUint.
//
// The bandwidth formulas need C(N,i) for N up to ~1024 in the exact
// evaluation path. We use the multiplicative formula, which stays exact at
// every intermediate step because C(n,k) = C(n,k-1)·(n-k+1)/k divides
// evenly, plus a row cache for repeated evaluation of whole PMFs.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"

namespace mbus {

/// C(n, k); zero when k > n.
BigUint binomial(std::uint64_t n, std::uint64_t k);

/// The full row [C(n,0), C(n,1), …, C(n,n)] computed with one Pascal pass.
std::vector<BigUint> binomial_row(std::uint64_t n);

/// n! (0! == 1).
BigUint factorial(std::uint64_t n);

/// Falling factorial n·(n−1)···(n−k+1); 1 when k == 0.
BigUint falling_factorial(std::uint64_t n, std::uint64_t k);

/// C(n, k) as a double via lgamma — the fast approximate path used when
/// exactness is not required; accurate to ~1e-14 relative for n <= 1024.
double binomial_double(std::uint64_t n, std::uint64_t k);

/// log(n!) = lgamma(n + 1), memoized in a shared table for n <= 4096 so
/// the bandwidth/degraded hot loops (which rebuild binomial PMFs per
/// failure pattern) stop paying an lgamma per coefficient. Thread-safe
/// (table built once under the magic-static guard); bit-identical to
/// calling lgamma directly.
double log_factorial(std::uint64_t n);

/// log C(n, k) (natural log); -inf when k > n. Served from the memoized
/// log_factorial table.
double log_binomial(std::uint64_t n, std::uint64_t k);

}  // namespace mbus
