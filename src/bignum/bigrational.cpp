#include "bignum/bigrational.hpp"

#include <ostream>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mbus {

BigRational::BigRational(BigInt numerator, BigInt denominator) {
  if (denominator.is_zero()) {
    throw DomainError("BigRational with zero denominator");
  }
  const bool negative =
      numerator.is_negative() != denominator.is_negative();
  numerator_ = BigInt(negative, numerator.magnitude());
  denominator_ = denominator.magnitude();
  reduce();
}

void BigRational::reduce() {
  if (numerator_.is_zero()) {
    denominator_ = BigUint(1);
    return;
  }
  const BigUint g = BigUint::gcd(numerator_.magnitude(), denominator_);
  if (!g.is_one()) {
    numerator_ = BigInt(numerator_.is_negative(),
                        numerator_.magnitude() / g);
    denominator_ = denominator_ / g;
  }
}

BigRational BigRational::parse(const std::string& text) {
  MBUS_EXPECTS(!text.empty(), "empty rational string");
  if (const auto slash = text.find('/'); slash != std::string::npos) {
    return BigRational(BigInt::from_decimal(text.substr(0, slash)),
                       BigInt::from_decimal(text.substr(slash + 1)));
  }
  const auto dot = text.find('.');
  if (dot == std::string::npos) {
    return BigRational(BigInt::from_decimal(text));
  }
  const std::string integral = text.substr(0, dot);
  const std::string fractional = text.substr(dot + 1);
  MBUS_EXPECTS(!fractional.empty(), "trailing decimal point");
  std::string digits = integral;
  const bool had_sign = !digits.empty() &&
                        (digits.front() == '-' || digits.front() == '+');
  if (digits.empty() || (had_sign && digits.size() == 1)) digits += '0';
  digits += fractional;
  const BigInt numerator = BigInt::from_decimal(digits);
  const BigInt denominator(BigUint(10).pow(fractional.size()));
  return BigRational(numerator, denominator);
}

BigRational BigRational::ratio(std::int64_t p, std::int64_t q) {
  return BigRational(BigInt(p), BigInt(q));
}

BigRational BigRational::negated() const {
  BigRational out = *this;
  out.numerator_ = numerator_.negated();
  return out;
}

BigRational BigRational::abs() const {
  BigRational out = *this;
  out.numerator_ = numerator_.abs();
  return out;
}

BigRational BigRational::reciprocal() const {
  if (is_zero()) throw DomainError("reciprocal of zero");
  return BigRational(BigInt(is_negative(), denominator_),
                     BigInt(numerator_.magnitude()));
}

BigRational BigRational::pow(std::int64_t exponent) const {
  if (exponent < 0) {
    return reciprocal().pow(-exponent);
  }
  BigRational out;
  out.numerator_ = numerator_.pow(static_cast<std::uint64_t>(exponent));
  out.denominator_ =
      denominator_.pow(static_cast<std::uint64_t>(exponent));
  // Powers of a reduced fraction stay reduced; no reduce() needed, but the
  // 0^0 == 1 convention needs the numerator fixed up.
  if (exponent == 0) {
    out.numerator_ = BigInt(1);
    out.denominator_ = BigUint(1);
  }
  return out;
}

double BigRational::to_double() const noexcept {
  // Scale so the integer division keeps ~80 bits of precision, then divide
  // as doubles.
  if (is_zero()) return 0.0;
  const BigUint& num = numerator_.magnitude();
  const std::size_t num_bits = num.bit_length();
  const std::size_t den_bits = denominator_.bit_length();
  // Shift numerator up so quotient has >= 64 significant bits.
  const std::size_t shift =
      den_bits + 64 > num_bits ? den_bits + 64 - num_bits : 0;
  const BigUint scaled = num.shifted_left(shift) / denominator_;
  const double quotient = scaled.to_double();
  const double value = std::ldexp(quotient, -static_cast<int>(shift));
  return is_negative() ? -value : value;
}

std::string BigRational::to_string() const {
  if (is_integer()) return numerator_.to_decimal();
  return numerator_.to_decimal() + "/" + denominator_.to_decimal();
}

std::string BigRational::to_decimal_string(std::size_t digits) const {
  const BigUint scale = BigUint(10).pow(digits);
  // Round half away from zero: floor((2·|num|·scale + den) / (2·den)).
  const BigUint twice_num = numerator_.magnitude() * scale * BigUint(2);
  const BigUint rounded =
      (twice_num + denominator_) / (denominator_ * BigUint(2));
  std::string body = rounded.to_decimal();
  if (body.size() <= digits) {
    body.insert(0, digits + 1 - body.size(), '0');
  }
  std::string out;
  if (is_negative() && !rounded.is_zero()) out += '-';
  out += body.substr(0, body.size() - digits);
  if (digits > 0) {
    out += '.';
    out += body.substr(body.size() - digits);
  }
  return out;
}

int BigRational::compare(const BigRational& a, const BigRational& b) {
  if (a.signum() != b.signum()) return a.signum() < b.signum() ? -1 : 1;
  // Cross-multiply magnitudes; signs are equal here.
  const BigUint lhs = a.numerator_.magnitude() * b.denominator_;
  const BigUint rhs = b.numerator_.magnitude() * a.denominator_;
  const int mag = BigUint::compare(lhs, rhs);
  return a.is_negative() ? -mag : mag;
}

BigRational operator+(const BigRational& a, const BigRational& b) {
  BigRational out;
  out.numerator_ = a.numerator_ * BigInt(b.denominator_) +
                   b.numerator_ * BigInt(a.denominator_);
  out.denominator_ = a.denominator_ * b.denominator_;
  out.reduce();
  return out;
}

BigRational operator-(const BigRational& a, const BigRational& b) {
  return a + b.negated();
}

BigRational operator*(const BigRational& a, const BigRational& b) {
  BigRational out;
  out.numerator_ = a.numerator_ * b.numerator_;
  out.denominator_ = a.denominator_ * b.denominator_;
  out.reduce();
  return out;
}

BigRational operator/(const BigRational& a, const BigRational& b) {
  return a * b.reciprocal();
}

BigRational& BigRational::operator+=(const BigRational& rhs) {
  *this = *this + rhs;
  return *this;
}
BigRational& BigRational::operator-=(const BigRational& rhs) {
  *this = *this - rhs;
  return *this;
}
BigRational& BigRational::operator*=(const BigRational& rhs) {
  *this = *this * rhs;
  return *this;
}
BigRational& BigRational::operator/=(const BigRational& rhs) {
  *this = *this / rhs;
  return *this;
}

std::ostream& operator<<(std::ostream& os, const BigRational& value) {
  return os << value.to_string();
}

}  // namespace mbus
