#include "bignum/bigint.hpp"

#include <ostream>

#include <limits>

#include "util/error.hpp"

namespace mbus {

BigInt::BigInt(std::int64_t value) {
  if (value < 0) {
    negative_ = true;
    // Negating INT64_MIN directly is UB; go through uint64.
    magnitude_ = BigUint(static_cast<std::uint64_t>(-(value + 1)) + 1);
  } else {
    magnitude_ = BigUint(static_cast<std::uint64_t>(value));
  }
}

BigInt::BigInt(BigUint magnitude) : magnitude_(std::move(magnitude)) {}

BigInt::BigInt(bool negative, BigUint magnitude)
    : negative_(negative && !magnitude.is_zero()),
      magnitude_(std::move(magnitude)) {}

BigInt BigInt::from_decimal(std::string_view text) {
  MBUS_EXPECTS(!text.empty(), "empty decimal string");
  bool negative = false;
  if (text.front() == '-' || text.front() == '+') {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  return BigInt(negative, BigUint::from_decimal(text));
}

BigInt BigInt::negated() const {
  return BigInt(!negative_, magnitude_);
}

std::string BigInt::to_decimal() const {
  std::string body = magnitude_.to_decimal();
  return negative_ ? "-" + body : body;
}

double BigInt::to_double() const noexcept {
  const double mag = magnitude_.to_double();
  return negative_ ? -mag : mag;
}

std::int64_t BigInt::to_i64() const {
  const std::uint64_t mag = magnitude_.to_u64();  // throws if > 64 bits
  if (negative_) {
    constexpr std::uint64_t kMinMag =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
        1;
    if (mag > kMinMag) {
      throw DomainError("BigInt does not fit in int64: " + to_decimal());
    }
    if (mag == kMinMag) return std::numeric_limits<std::int64_t>::min();
    return -static_cast<std::int64_t>(mag);
  }
  if (mag >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw DomainError("BigInt does not fit in int64: " + to_decimal());
  }
  return static_cast<std::int64_t>(mag);
}

int BigInt::compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.signum() != b.signum()) return a.signum() < b.signum() ? -1 : 1;
  const int mag = BigUint::compare(a.magnitude_, b.magnitude_);
  return a.negative_ ? -mag : mag;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    return BigInt(a.negative_, a.magnitude_ + b.magnitude_);
  }
  const int cmp = BigUint::compare(a.magnitude_, b.magnitude_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) return BigInt(a.negative_, a.magnitude_ - b.magnitude_);
  return BigInt(b.negative_, b.magnitude_ - a.magnitude_);
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  return a + b.negated();
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  return BigInt(a.negative_ != b.negative_, a.magnitude_ * b.magnitude_);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  auto dm = BigUint::divmod(a.magnitude_, b.magnitude_);
  return BigInt(a.negative_ != b.negative_, std::move(dm.quotient));
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  auto dm = BigUint::divmod(a.magnitude_, b.magnitude_);
  return BigInt(a.negative_, std::move(dm.remainder));
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  *this = *this + rhs;
  return *this;
}
BigInt& BigInt::operator-=(const BigInt& rhs) {
  *this = *this - rhs;
  return *this;
}
BigInt& BigInt::operator*=(const BigInt& rhs) {
  *this = *this * rhs;
  return *this;
}

BigInt BigInt::pow(std::uint64_t exponent) const {
  const bool negative = negative_ && (exponent % 2 == 1);
  return BigInt(negative, magnitude_.pow(exponent));
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_decimal();
}

}  // namespace mbus
