// Arbitrary-precision signed integers: a sign-and-magnitude wrapper over
// BigUint. Zero is always stored with a positive sign so equality is
// structural.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "bignum/biguint.hpp"

namespace mbus {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)
  BigInt(BigUint magnitude);   // NOLINT(google-explicit-constructor)
  BigInt(bool negative, BigUint magnitude);

  /// Parse decimal with optional leading '-' or '+'.
  static BigInt from_decimal(std::string_view text);

  bool is_zero() const noexcept { return magnitude_.is_zero(); }
  bool is_negative() const noexcept { return negative_; }
  /// -1, 0, or +1.
  int signum() const noexcept {
    if (is_zero()) return 0;
    return negative_ ? -1 : 1;
  }

  const BigUint& magnitude() const noexcept { return magnitude_; }
  BigInt negated() const;
  BigInt abs() const { return BigInt(magnitude_); }

  std::string to_decimal() const;
  double to_double() const noexcept;
  /// Throws DomainError if the value does not fit.
  std::int64_t to_i64() const;

  static int compare(const BigInt& a, const BigInt& b) noexcept;

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) >= 0;
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with the sign of the dividend (C++ semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a) { return a.negated(); }

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);

  BigInt pow(std::uint64_t exponent) const;

 private:
  bool negative_ = false;
  BigUint magnitude_;
};

/// Stream insertion (decimal form) — handy in logs and gtest output.
std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace mbus
