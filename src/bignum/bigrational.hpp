// Exact rational arithmetic over BigInt/BigUint.
//
// This is the backbone of the exact evaluation path: every probability in
// the Chen–Sheu model (request fractions m_i, the per-module request
// probability X, binomial PMF terms, and the bandwidth sums) is a rational
// number whenever r and the m_i are rational, so the whole analysis can be
// carried out without any rounding and compared digit-for-digit against
// the double-precision path.
//
// Invariants: denominator > 0, gcd(|numerator|, denominator) == 1, and
// zero is represented as 0/1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "bignum/bigint.hpp"
#include "bignum/biguint.hpp"

namespace mbus {

class BigRational {
 public:
  /// Zero.
  BigRational() : numerator_(0), denominator_(1) {}

  BigRational(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : numerator_(value), denominator_(1) {}

  BigRational(BigInt value)  // NOLINT(google-explicit-constructor)
      : numerator_(std::move(value)), denominator_(1) {}

  /// numerator / denominator; throws DomainError if denominator is zero.
  BigRational(BigInt numerator, BigInt denominator);

  /// Exact value of a decimal string like "-12.0625" or "3/8".
  static BigRational parse(const std::string& text);

  /// p/q from machine integers; q must be nonzero.
  static BigRational ratio(std::int64_t p, std::int64_t q);

  bool is_zero() const noexcept { return numerator_.is_zero(); }
  bool is_negative() const noexcept { return numerator_.is_negative(); }
  bool is_integer() const noexcept { return denominator_.is_one(); }
  int signum() const noexcept { return numerator_.signum(); }

  const BigInt& numerator() const noexcept { return numerator_; }
  const BigUint& denominator_magnitude() const noexcept {
    return denominator_;
  }

  BigRational negated() const;
  BigRational abs() const;
  /// Multiplicative inverse; throws DomainError on zero.
  BigRational reciprocal() const;
  /// this^exponent; negative exponents invert (throws on 0^negative).
  BigRational pow(std::int64_t exponent) const;

  double to_double() const noexcept;
  /// "p/q" (or just "p" when q == 1).
  std::string to_string() const;
  /// Fixed-point decimal expansion with `digits` fractional digits,
  /// rounded half away from zero.
  std::string to_decimal_string(std::size_t digits) const;

  static int compare(const BigRational& a, const BigRational& b);

  friend bool operator==(const BigRational& a, const BigRational& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigRational& a, const BigRational& b) {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigRational& a, const BigRational& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigRational& a, const BigRational& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigRational& a, const BigRational& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigRational& a, const BigRational& b) {
    return compare(a, b) >= 0;
  }

  friend BigRational operator+(const BigRational& a, const BigRational& b);
  friend BigRational operator-(const BigRational& a, const BigRational& b);
  friend BigRational operator*(const BigRational& a, const BigRational& b);
  /// Throws DomainError when b is zero.
  friend BigRational operator/(const BigRational& a, const BigRational& b);
  friend BigRational operator-(const BigRational& a) { return a.negated(); }

  BigRational& operator+=(const BigRational& rhs);
  BigRational& operator-=(const BigRational& rhs);
  BigRational& operator*=(const BigRational& rhs);
  BigRational& operator/=(const BigRational& rhs);

 private:
  void reduce();

  BigInt numerator_;
  BigUint denominator_;  // always positive
};

/// Stream insertion (decimal form) — handy in logs and gtest output.
std::ostream& operator<<(std::ostream& os, const BigRational& value);

}  // namespace mbus
