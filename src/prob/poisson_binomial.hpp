// The Poisson-binomial distribution: the number of successes among
// independent but *non-identically* distributed Bernoulli trials.
//
// This generalizes the binomial engine behind eqs. 3–4 to asymmetric
// request probabilities: when the per-module request probabilities X_m
// differ (hot-spot workloads, asymmetric hierarchies, N×M×B layouts with
// uneven favorites), the number of requested modules is Poisson-binomial
// with parameters {X_m}, and the bandwidth of a B-bus full-connection
// network is E[min(I, B)] under this law.
//
// The PMF is computed by the standard O(M²) dynamic program, which is
// numerically benign (all terms non-negative; no cancellation).
#pragma once

#include <cstdint>
#include <vector>

namespace mbus {

class PoissonBinomialDistribution {
 public:
  /// Success probabilities, each in [0, 1]. An empty list is the
  /// degenerate distribution at 0.
  explicit PoissonBinomialDistribution(std::vector<double> probabilities);

  std::int64_t trials() const noexcept {
    return static_cast<std::int64_t>(probabilities_.size());
  }

  double mean() const noexcept;
  double variance() const noexcept;

  /// P(I == i); zero outside [0, trials()].
  double pmf(std::int64_t i) const;

  /// P(I <= i).
  double cdf(std::int64_t i) const;

  /// Σ_{i > b} (i − b)·P(I == i).
  double expected_excess_over(std::int64_t b) const;

  /// E[min(I, b)].
  double expected_min_with(std::int64_t b) const;

  const std::vector<double>& pmf_table() const noexcept { return pmf_; }

 private:
  std::vector<double> probabilities_;
  std::vector<double> pmf_;
};

}  // namespace mbus
