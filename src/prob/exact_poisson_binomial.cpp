#include "prob/exact_poisson_binomial.hpp"

#include "util/error.hpp"

namespace mbus {

ExactPoissonBinomialDistribution::ExactPoissonBinomialDistribution(
    std::vector<BigRational> probabilities)
    : probabilities_(std::move(probabilities)) {
  for (const auto& p : probabilities_) {
    MBUS_EXPECTS(!p.is_negative() && p <= BigRational(1),
                 "success probabilities must lie in [0, 1]");
  }
  pmf_.assign(1, BigRational(1));
  pmf_.reserve(probabilities_.size() + 1);
  for (const auto& p : probabilities_) {
    const BigRational q = BigRational(1) - p;
    pmf_.push_back(pmf_.back() * p);
    for (std::size_t i = pmf_.size() - 2; i > 0; --i) {
      pmf_[i] = pmf_[i] * q + pmf_[i - 1] * p;
    }
    pmf_[0] *= q;
  }
}

BigRational ExactPoissonBinomialDistribution::mean() const {
  BigRational sum;
  for (const auto& p : probabilities_) sum += p;
  return sum;
}

BigRational ExactPoissonBinomialDistribution::pmf(std::int64_t i) const {
  if (i < 0 || i > trials()) return BigRational();
  return pmf_[static_cast<std::size_t>(i)];
}

BigRational ExactPoissonBinomialDistribution::cdf(std::int64_t i) const {
  if (i < 0) return BigRational();
  if (i >= trials()) return BigRational(1);
  BigRational acc;
  for (std::int64_t j = 0; j <= i; ++j) {
    acc += pmf_[static_cast<std::size_t>(j)];
  }
  return acc;
}

BigRational ExactPoissonBinomialDistribution::expected_excess_over(
    std::int64_t b) const {
  MBUS_EXPECTS(b >= 0, "capacity must be non-negative");
  BigRational acc;
  for (std::int64_t i = b + 1; i <= trials(); ++i) {
    acc += BigRational(i - b) * pmf_[static_cast<std::size_t>(i)];
  }
  return acc;
}

BigRational ExactPoissonBinomialDistribution::expected_min_with(
    std::int64_t b) const {
  return mean() - expected_excess_over(b);
}

}  // namespace mbus
