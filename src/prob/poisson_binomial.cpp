#include "prob/poisson_binomial.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mbus {

PoissonBinomialDistribution::PoissonBinomialDistribution(
    std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  for (const double p : probabilities_) {
    MBUS_EXPECTS(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                 "success probabilities must lie in [0, 1]");
  }
  // DP over trials: after processing k trials, pmf_[i] = P(i successes).
  pmf_.assign(1, 1.0);
  pmf_.reserve(probabilities_.size() + 1);
  for (const double p : probabilities_) {
    pmf_.push_back(pmf_.back() * p);
    for (std::size_t i = pmf_.size() - 2; i > 0; --i) {
      pmf_[i] = pmf_[i] * (1.0 - p) + pmf_[i - 1] * p;
    }
    pmf_[0] *= 1.0 - p;
  }
}

double PoissonBinomialDistribution::mean() const noexcept {
  double sum = 0.0;
  for (const double p : probabilities_) sum += p;
  return sum;
}

double PoissonBinomialDistribution::variance() const noexcept {
  double sum = 0.0;
  for (const double p : probabilities_) sum += p * (1.0 - p);
  return sum;
}

double PoissonBinomialDistribution::pmf(std::int64_t i) const {
  if (i < 0 || i > trials()) return 0.0;
  return pmf_[static_cast<std::size_t>(i)];
}

double PoissonBinomialDistribution::cdf(std::int64_t i) const {
  if (i < 0) return 0.0;
  if (i >= trials()) return 1.0;
  double acc = 0.0;
  for (std::int64_t j = 0; j <= i; ++j) {
    acc += pmf_[static_cast<std::size_t>(j)];
  }
  return acc;
}

double PoissonBinomialDistribution::expected_excess_over(
    std::int64_t b) const {
  MBUS_EXPECTS(b >= 0, "capacity must be non-negative");
  double acc = 0.0;
  for (std::int64_t i = trials(); i > b; --i) {
    acc += static_cast<double>(i - b) * pmf_[static_cast<std::size_t>(i)];
  }
  return acc;
}

double PoissonBinomialDistribution::expected_min_with(std::int64_t b) const {
  return mean() - expected_excess_over(b);
}

}  // namespace mbus
