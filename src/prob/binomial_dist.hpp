// Binomial distribution Bin(n, p) in double precision, evaluated in log
// space so that no table entry under- or over-flows even for n in the
// thousands with p near 0 or 1 (a naive recurrence from (1-p)^n underflows
// at p = 0.99, n = 1024 — exactly the "big-number care" trap in the
// paper's combinatorics).
//
// The two derived quantities the bandwidth analysis needs:
//   * expected_min_with(b)  = E[min(I, b)]       (eq. 4 / eq. 8 inner sum)
//   * expected_excess_over(b) = E[(I − b)^+]     (the tail correction)
// which satisfy E[min(I,b)] = n·p − E[(I−b)^+].
#pragma once

#include <cstdint>
#include <vector>

namespace mbus {

class BinomialDistribution {
 public:
  /// n >= 0 trials with success probability p in [0, 1].
  BinomialDistribution(std::int64_t n, double p);

  std::int64_t trials() const noexcept { return n_; }
  double success_probability() const noexcept { return p_; }
  double mean() const noexcept;

  /// P(I == i); zero outside [0, n].
  double pmf(std::int64_t i) const;

  /// P(I <= i); 0 below 0, 1 at and above n. O(1): served from a prefix
  /// table built alongside the PMF (the k-classes idle products call this
  /// once per (bus, class) pair, which was quadratic when each call
  /// re-summed the PMF).
  double cdf(std::int64_t i) const;

  /// Σ_{i > b} (i − b) · P(I == i)  — the expected number of requests that
  /// exceed a capacity of b servers.
  double expected_excess_over(std::int64_t b) const;

  /// E[min(I, b)] — the expected number of requests a capacity of b
  /// servers can grant.
  double expected_min_with(std::int64_t b) const;

  /// The full PMF table, indices 0..n.
  const std::vector<double>& pmf_table() const noexcept { return pmf_; }

 private:
  std::int64_t n_;
  double p_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cdf_[i] = pmf_[0] + … + pmf_[i]
};

}  // namespace mbus
