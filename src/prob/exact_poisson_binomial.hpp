// The Poisson-binomial distribution in exact rational arithmetic —
// the exact companion of prob/poisson_binomial.hpp, closing the last gap
// in the exact evaluation path: asymmetric per-module probabilities (hot
// spots, uneven favorites) with zero rounding.
//
// The same O(M²) dynamic program as the double version, carried out over
// BigRational. Intended for moderate M (the rationals' denominators grow
// with the product of the input denominators).
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigrational.hpp"

namespace mbus {

class ExactPoissonBinomialDistribution {
 public:
  /// Success probabilities, each in [0, 1] (checked).
  explicit ExactPoissonBinomialDistribution(
      std::vector<BigRational> probabilities);

  std::int64_t trials() const noexcept {
    return static_cast<std::int64_t>(probabilities_.size());
  }

  BigRational mean() const;

  /// P(I == i); zero outside [0, trials()].
  BigRational pmf(std::int64_t i) const;

  /// P(I <= i).
  BigRational cdf(std::int64_t i) const;

  /// Σ_{i > b} (i − b)·P(I == i), exactly.
  BigRational expected_excess_over(std::int64_t b) const;

  /// E[min(I, b)], exactly.
  BigRational expected_min_with(std::int64_t b) const;

 private:
  std::vector<BigRational> probabilities_;
  std::vector<BigRational> pmf_;
};

}  // namespace mbus
