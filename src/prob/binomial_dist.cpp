#include "prob/binomial_dist.hpp"

#include <cmath>

#include "bignum/binomial.hpp"
#include "util/error.hpp"

namespace mbus {

BinomialDistribution::BinomialDistribution(std::int64_t n, double p)
    : n_(n), p_(p) {
  MBUS_EXPECTS(n >= 0, "number of trials must be non-negative");
  MBUS_EXPECTS(p >= 0.0 && p <= 1.0 && std::isfinite(p),
               "probability must lie in [0, 1]");
  pmf_.assign(static_cast<std::size_t>(n) + 1, 0.0);
  if (p == 0.0) {
    pmf_[0] = 1.0;
  } else if (p == 1.0) {
    pmf_.back() = 1.0;
  } else {
    const double log_p = std::log(p);
    const double log_q = std::log1p(-p);
    for (std::int64_t i = 0; i <= n; ++i) {
      const double log_term =
          log_binomial(static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(i)) +
          static_cast<double>(i) * log_p +
          static_cast<double>(n - i) * log_q;
      pmf_[static_cast<std::size_t>(i)] = std::exp(log_term);
    }
  }
  // Prefix sums accumulated in the same ascending order the old per-call
  // cdf() loop used, so every cdf value stays bit-identical.
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = acc;
  }
}

double BinomialDistribution::mean() const noexcept {
  return static_cast<double>(n_) * p_;
}

double BinomialDistribution::pmf(std::int64_t i) const {
  if (i < 0 || i > n_) return 0.0;
  return pmf_[static_cast<std::size_t>(i)];
}

double BinomialDistribution::cdf(std::int64_t i) const {
  if (i < 0) return 0.0;
  if (i >= n_) return 1.0;
  return cdf_[static_cast<std::size_t>(i)];
}

double BinomialDistribution::expected_excess_over(std::int64_t b) const {
  MBUS_EXPECTS(b >= 0, "capacity must be non-negative");
  double acc = 0.0;
  // Sum smallest terms first for accuracy: the tail decays away from the
  // mode, so iterate from n downward only when b is left of the mode.
  for (std::int64_t i = n_; i > b; --i) {
    acc += static_cast<double>(i - b) * pmf_[static_cast<std::size_t>(i)];
  }
  return acc;
}

double BinomialDistribution::expected_min_with(std::int64_t b) const {
  return mean() - expected_excess_over(b);
}

}  // namespace mbus
