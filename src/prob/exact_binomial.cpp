#include "prob/exact_binomial.hpp"

#include "bignum/binomial.hpp"
#include "util/error.hpp"

namespace mbus {

ExactBinomialDistribution::ExactBinomialDistribution(std::int64_t n,
                                                     BigRational p)
    : n_(n), p_(std::move(p)) {
  MBUS_EXPECTS(n >= 0, "number of trials must be non-negative");
  MBUS_EXPECTS(!p_.is_negative() && p_ <= BigRational(1),
               "probability must lie in [0, 1]");
  const auto un = static_cast<std::uint64_t>(n);

  // p = u/v in lowest terms; q = (v−u)/v; pmf_i = C(n,i)·u^i·(v−u)^{n−i}/v^n.
  //
  // Performance note: all PMF terms share the denominator v^n, which for
  // large n can run to thousands of digits. We therefore keep raw
  // numerators over that common denominator and reduce to a canonical
  // BigRational only at the API boundary — otherwise every partial sum in
  // cdf()/expected_excess_over() would pay a multi-thousand-digit gcd.
  const BigUint u = p_.numerator().magnitude();
  const BigUint v = p_.denominator_magnitude();
  const BigUint w = v - u;  // numerator of q
  common_denominator_ = v.pow(un);

  const std::vector<BigUint> row = binomial_row(un);

  std::vector<BigUint> u_pows(un + 1), w_pows(un + 1);
  u_pows[0] = BigUint(1);
  w_pows[0] = BigUint(1);
  for (std::uint64_t i = 1; i <= un; ++i) {
    u_pows[i] = u_pows[i - 1] * u;
    w_pows[i] = w_pows[i - 1] * w;
  }
  numerators_.reserve(row.size());
  for (std::uint64_t i = 0; i <= un; ++i) {
    numerators_.push_back(row[i] * u_pows[i] * w_pows[un - i]);
  }
}

BigRational ExactBinomialDistribution::as_probability(
    BigUint numerator) const {
  return BigRational(BigInt(std::move(numerator)),
                     BigInt(common_denominator_));
}

BigRational ExactBinomialDistribution::mean() const {
  return BigRational(n_) * p_;
}

BigRational ExactBinomialDistribution::pmf(std::int64_t i) const {
  if (i < 0 || i > n_) return BigRational();
  return as_probability(numerators_[static_cast<std::size_t>(i)]);
}

BigRational ExactBinomialDistribution::cdf(std::int64_t i) const {
  if (i < 0) return BigRational();
  if (i >= n_) return BigRational(1);
  BigUint acc;
  for (std::int64_t j = 0; j <= i; ++j) {
    acc += numerators_[static_cast<std::size_t>(j)];
  }
  return as_probability(std::move(acc));
}

BigRational ExactBinomialDistribution::expected_excess_over(
    std::int64_t b) const {
  MBUS_EXPECTS(b >= 0, "capacity must be non-negative");
  BigUint acc;
  for (std::int64_t i = b + 1; i <= n_; ++i) {
    acc += BigUint(static_cast<std::uint64_t>(i - b)) *
           numerators_[static_cast<std::size_t>(i)];
  }
  return as_probability(std::move(acc));
}

BigRational ExactBinomialDistribution::expected_min_with(
    std::int64_t b) const {
  return mean() - expected_excess_over(b);
}

}  // namespace mbus
