// The binomial distribution in exact rational arithmetic.
//
// For rational p = u/v, every PMF value C(n,i)·u^i·(v−u)^{n−i} / v^n is an
// exact rational; sums and the capacity-excess expectation are therefore
// exact as well. These are used to cross-validate the double-precision
// path (tests require agreement to ~1e-12 relative everywhere) and to run
// large-N sweeps where doubles need care.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigrational.hpp"

namespace mbus {

class ExactBinomialDistribution {
 public:
  /// n >= 0 trials, success probability p in [0, 1] (checked).
  ExactBinomialDistribution(std::int64_t n, BigRational p);

  std::int64_t trials() const noexcept { return n_; }
  const BigRational& success_probability() const noexcept { return p_; }

  BigRational mean() const;

  /// P(I == i); zero outside [0, n].
  BigRational pmf(std::int64_t i) const;

  /// P(I <= i).
  BigRational cdf(std::int64_t i) const;

  /// Σ_{i > b} (i − b) · P(I == i), exactly.
  BigRational expected_excess_over(std::int64_t b) const;

  /// E[min(I, b)], exactly.
  BigRational expected_min_with(std::int64_t b) const;

 private:
  /// Reduce a raw numerator over the common denominator v^n.
  BigRational as_probability(BigUint numerator) const;

  std::int64_t n_;
  BigRational p_;
  // PMF stored as raw numerators over the shared denominator v^n, so that
  // sums stay in integer arithmetic and only API results pay a gcd.
  std::vector<BigUint> numerators_;
  BigUint common_denominator_;
};

}  // namespace mbus
