// Zipf-distributed module popularity: module m is requested with
// probability proportional to 1/(m+1)^s. The classic skewed-popularity
// model; with s = 0 it degenerates to uniform referencing. Like the
// hot-spot model this is asymmetric across modules, so the bandwidth
// analysis goes through analysis/asymmetric.hpp.
#pragma once

#include <vector>

#include "workload/request_model.hpp"

namespace mbus {

class ZipfModel final : public RequestModel {
 public:
  /// `exponent` = s >= 0. All processors share the same popularity
  /// ranking (module 0 most popular).
  ZipfModel(int num_processors, int num_memories, double exponent,
            double request_rate);

  int num_processors() const noexcept override { return num_processors_; }
  int num_memories() const noexcept override {
    return static_cast<int>(fractions_.size());
  }
  double request_rate() const noexcept override { return rate_; }
  double fraction(int p, int m) const override;

  double exponent() const noexcept { return exponent_; }

  /// X_m for every module, closed form (all processors identical):
  /// X_m = 1 − (1 − r·f_m)^N.
  std::vector<double> per_module_request_probabilities() const;

 private:
  int num_processors_;
  double exponent_;
  double rate_;
  std::vector<double> fractions_;  // shared by all processors
};

}  // namespace mbus
