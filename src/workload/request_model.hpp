// Abstract memory-requesting model (Section III-A of Chen & Sheu).
//
// A request model answers one question: conditioned on processor `p`
// issuing a request this cycle, what is the probability that it targets
// memory module `m`? Together with the per-cycle request rate `r`
// (assumption 3), this determines everything the bandwidth analysis needs,
// in particular the per-module request probability
//     X_m = 1 − Π_p (1 − r · fraction(p, m))                       (eq. 2)
// i.e. the probability that at least one processor requests module m.
#pragma once

#include <memory>
#include <vector>

namespace mbus {

class RequestModel {
 public:
  virtual ~RequestModel() = default;

  virtual int num_processors() const noexcept = 0;
  virtual int num_memories() const noexcept = 0;

  /// Probability that a processor issues a request in a given cycle
  /// (assumption 3); identical for all processors.
  virtual double request_rate() const noexcept = 0;

  /// P(request from `p` targets `m` | `p` issues a request).
  /// Each row over m must sum to 1.
  virtual double fraction(int p, int m) const = 0;

  /// X_m computed from first principles as a product over all processors.
  /// O(N); mainly used to cross-check closed forms.
  double module_request_probability(int m) const;

  /// X for symmetric models. Verifies every module agrees within `tol`
  /// and throws InvalidArgument otherwise.
  double symmetric_request_probability(double tol = 1e-9) const;

  /// The full fraction row of processor `p` (for building samplers).
  std::vector<double> fraction_row(int p) const;

  /// Checks domain invariants: valid sizes, r in [0,1], rows sum to 1.
  /// Throws InvalidArgument on violation.
  void validate(double tol = 1e-9) const;
};

}  // namespace mbus
