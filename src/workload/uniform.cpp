#include "workload/uniform.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mbus {

UniformModel::UniformModel(int num_processors, int num_memories,
                           BigRational request_rate)
    : num_processors_(num_processors),
      num_memories_(num_memories),
      rate_(std::move(request_rate)) {
  MBUS_EXPECTS(num_processors >= 1, "need at least one processor");
  MBUS_EXPECTS(num_memories >= 1, "need at least one memory module");
  MBUS_EXPECTS(!rate_.is_negative() && rate_ <= BigRational(1),
               "request rate must lie in [0, 1]");
  rate_double_ = rate_.to_double();
  fraction_ = 1.0 / static_cast<double>(num_memories_);
}

double UniformModel::fraction(int p, int m) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors_, "processor index out of range");
  MBUS_EXPECTS(m >= 0 && m < num_memories_, "module index out of range");
  return fraction_;
}

BigRational UniformModel::exact_request_probability() const {
  const BigRational miss =
      BigRational(1) - rate_ / BigRational(num_memories_);
  return BigRational(1) - miss.pow(num_processors_);
}

double UniformModel::closed_form_request_probability() const {
  return request_probability_at(rate_double_);
}

double UniformModel::request_probability_at(double rate) const {
  MBUS_EXPECTS(rate >= 0.0 && rate <= 1.0,
               "request rate must lie in [0, 1]");
  const double miss = 1.0 - rate / static_cast<double>(num_memories_);
  return 1.0 - std::pow(miss, static_cast<double>(num_processors_));
}

}  // namespace mbus
