// The uniform requesting model: every processor addresses every memory
// module with equal probability 1/M. This is the baseline against which
// the hierarchical model is compared throughout Section IV.
#pragma once

#include "bignum/bigrational.hpp"
#include "workload/request_model.hpp"

namespace mbus {

class UniformModel final : public RequestModel {
 public:
  UniformModel(int num_processors, int num_memories,
               BigRational request_rate);

  int num_processors() const noexcept override { return num_processors_; }
  int num_memories() const noexcept override { return num_memories_; }
  double request_rate() const noexcept override { return rate_double_; }
  double fraction(int p, int m) const override;

  /// X = 1 − (1 − r/M)^N, exactly.
  BigRational exact_request_probability() const;
  /// X in double precision.
  double closed_form_request_probability() const;
  /// X evaluated at an overridden request rate (for the adjusted-rate
  /// resubmission fixed point).
  double request_probability_at(double rate) const;
  const BigRational& exact_request_rate() const noexcept { return rate_; }

 private:
  int num_processors_;
  int num_memories_;
  BigRational rate_;
  double rate_double_;
  double fraction_;
};

}  // namespace mbus
