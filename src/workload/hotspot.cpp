#include "workload/hotspot.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mbus {

HotSpotModel::HotSpotModel(int num_processors, int num_memories,
                           int hot_module, BigRational hot_fraction,
                           BigRational request_rate)
    : num_processors_(num_processors),
      num_memories_(num_memories),
      hot_module_(hot_module),
      hot_fraction_(std::move(hot_fraction)),
      rate_(std::move(request_rate)) {
  MBUS_EXPECTS(num_processors >= 1, "need at least one processor");
  MBUS_EXPECTS(num_memories >= 1, "need at least one memory module");
  MBUS_EXPECTS(hot_module >= 0 && hot_module < num_memories,
               "hot module index out of range");
  MBUS_EXPECTS(!hot_fraction_.is_negative() &&
                   hot_fraction_ <= BigRational(1),
               "hot fraction must lie in [0, 1]");
  MBUS_EXPECTS(!rate_.is_negative() && rate_ <= BigRational(1),
               "request rate must lie in [0, 1]");
  rate_double_ = rate_.to_double();
  const double h = hot_fraction_.to_double();
  const double uniform = (1.0 - h) / static_cast<double>(num_memories_);
  hot_double_ = h + uniform;
  cold_double_ = uniform;
}

double HotSpotModel::fraction(int p, int m) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors_, "processor index out of range");
  MBUS_EXPECTS(m >= 0 && m < num_memories_, "module index out of range");
  return m == hot_module_ ? hot_double_ : cold_double_;
}

double HotSpotModel::hot_request_probability() const {
  return 1.0 - std::pow(1.0 - rate_double_ * hot_double_,
                        static_cast<double>(num_processors_));
}

BigRational HotSpotModel::exact_hot_request_probability() const {
  const BigRational m(num_memories_);
  const BigRational per_module =
      hot_fraction_ + (BigRational(1) - hot_fraction_) / m;
  return BigRational(1) -
         (BigRational(1) - rate_ * per_module).pow(num_processors_);
}

double HotSpotModel::cold_request_probability() const {
  return 1.0 - std::pow(1.0 - rate_double_ * cold_double_,
                        static_cast<double>(num_processors_));
}

BigRational HotSpotModel::exact_cold_request_probability() const {
  const BigRational m(num_memories_);
  const BigRational per_module = (BigRational(1) - hot_fraction_) / m;
  return BigRational(1) -
         (BigRational(1) - rate_ * per_module).pow(num_processors_);
}

}  // namespace mbus
