#include "workload/matrix_model.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

MatrixModel::MatrixModel(std::vector<std::vector<double>> fractions,
                         double request_rate)
    : fractions_(std::move(fractions)), rate_(request_rate) {
  MBUS_EXPECTS(!fractions_.empty(), "fraction matrix must be non-empty");
  MBUS_EXPECTS(rate_ >= 0.0 && rate_ <= 1.0,
               "request rate must lie in [0, 1]");
  const std::size_t m = fractions_.front().size();
  MBUS_EXPECTS(m > 0, "fraction matrix must have columns");
  for (std::size_t p = 0; p < fractions_.size(); ++p) {
    MBUS_EXPECTS(fractions_[p].size() == m,
                 "all fraction rows must have the same length");
    double row_sum = 0.0;
    for (const double f : fractions_[p]) {
      MBUS_EXPECTS(f >= 0.0 && f <= 1.0,
                   "fractions must lie in [0, 1]");
      row_sum += f;
    }
    MBUS_EXPECTS(std::fabs(row_sum - 1.0) <= 1e-9,
                 cat("row ", p, " sums to ", row_sum, ", expected 1"));
  }
}

MatrixModel MatrixModel::das_bhuyan(int num_processors, int num_memories,
                                    double favorite_fraction,
                                    double request_rate) {
  MBUS_EXPECTS(num_processors >= 1, "need at least one processor");
  MBUS_EXPECTS(num_memories >= 1, "need at least one memory module");
  MBUS_EXPECTS(favorite_fraction >= 0.0 && favorite_fraction <= 1.0,
               "favorite fraction must lie in [0, 1]");
  if (num_memories == 1) {
    MBUS_EXPECTS(favorite_fraction == 1.0,
                 "single module must receive the whole fraction");
  }
  const double rest =
      num_memories == 1
          ? 0.0
          : (1.0 - favorite_fraction) / static_cast<double>(num_memories - 1);
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(num_processors),
      std::vector<double>(static_cast<std::size_t>(num_memories), rest));
  for (int p = 0; p < num_processors; ++p) {
    rows[static_cast<std::size_t>(p)]
        [static_cast<std::size_t>(p % num_memories)] = favorite_fraction;
  }
  return MatrixModel(std::move(rows), request_rate);
}

double MatrixModel::fraction(int p, int m) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors(),
               "processor index out of range");
  MBUS_EXPECTS(m >= 0 && m < num_memories(), "module index out of range");
  return fractions_[static_cast<std::size_t>(p)]
                   [static_cast<std::size_t>(m)];
}

}  // namespace mbus
