#include "workload/zipf.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mbus {

ZipfModel::ZipfModel(int num_processors, int num_memories, double exponent,
                     double request_rate)
    : num_processors_(num_processors),
      exponent_(exponent),
      rate_(request_rate) {
  MBUS_EXPECTS(num_processors >= 1, "need at least one processor");
  MBUS_EXPECTS(num_memories >= 1, "need at least one memory module");
  MBUS_EXPECTS(std::isfinite(exponent) && exponent >= 0.0,
               "Zipf exponent must be finite and >= 0");
  MBUS_EXPECTS(request_rate >= 0.0 && request_rate <= 1.0,
               "request rate must lie in [0, 1]");
  fractions_.resize(static_cast<std::size_t>(num_memories));
  double norm = 0.0;
  for (int m = 0; m < num_memories; ++m) {
    fractions_[static_cast<std::size_t>(m)] =
        1.0 / std::pow(static_cast<double>(m + 1), exponent);
    norm += fractions_[static_cast<std::size_t>(m)];
  }
  for (double& f : fractions_) f /= norm;
}

double ZipfModel::fraction(int p, int m) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors_, "processor index out of range");
  MBUS_EXPECTS(m >= 0 && m < num_memories(), "module index out of range");
  return fractions_[static_cast<std::size_t>(m)];
}

std::vector<double> ZipfModel::per_module_request_probabilities() const {
  std::vector<double> xs;
  xs.reserve(fractions_.size());
  for (const double f : fractions_) {
    xs.push_back(1.0 - std::pow(1.0 - rate_ * f,
                                static_cast<double>(num_processors_)));
  }
  return xs;
}

}  // namespace mbus
