// The hierarchical requesting model of Chen & Sheu, Section III-A.
//
// Processors (and memory modules) are organized into an n-level hierarchy
// with cluster sizes k_1, …, k_n (N = k_1·k_2···k_n). Two variants exist:
//
//   * N×N×B — every processor P_i has its own favorite module MM_i. A
//     processor has n+1 request fractions: m_0 to its favorite module and
//     m_t (1 ≤ t ≤ n) to each module whose deepest shared subcluster with
//     the processor is at level n−t. The number of modules at fraction m_t
//     is N_t = (k_{n−t+1} − 1)·k_{n−t+2}···k_n, with N_0 = 1 (eq. 1), and
//     the fractions must satisfy Σ m_t·N_t = 1.
//
//   * N×M×B — each last-level subcluster of k_n processors shares k'_n
//     favorite modules (M = k_1···k_{n−1}·k'_n). A processor has n
//     fractions m_0 … m_{n−1}: m_0 to each favorite module, m_t to each
//     module at subcluster distance t. Module counts per level are
//     M_0 = k'_n, M_t = (k_{n−t} − 1)·k_{n−t+1}···k_{n−1}·k'_n.
//
// All fractions and the request rate are stored as exact rationals so the
// model supports both the double-precision and the exact analysis paths.
#pragma once

#include <vector>

#include "bignum/bigrational.hpp"
#include "workload/request_model.hpp"

namespace mbus {

class HierarchicalModel final : public RequestModel {
 public:
  /// N×N×B variant with explicit per-module fractions m_0 … m_n.
  /// `cluster_sizes` is k_1 … k_n (each ≥ 1, product = N ≥ 1).
  static HierarchicalModel nxn(std::vector<int> cluster_sizes,
                               std::vector<BigRational> level_fractions,
                               BigRational request_rate);

  /// N×N×B variant from *aggregate* fractions a_0 … a_n with Σ a_t = 1:
  /// a_0 is the total fraction to the favorite module, a_t the total
  /// fraction spread evenly over the N_t modules at level t (this is the
  /// 0.6 / 0.3 / 0.1 parameterization of Section IV). Levels with zero
  /// modules (N_t == 0) must carry a_t == 0.
  static HierarchicalModel nxn_from_aggregate(
      std::vector<int> cluster_sizes,
      std::vector<BigRational> aggregate_fractions,
      BigRational request_rate);

  /// N×M×B variant with explicit per-module fractions m_0 … m_{n−1}.
  /// `favorite_group_size` is k'_n.
  static HierarchicalModel nxm(std::vector<int> cluster_sizes,
                               int favorite_group_size,
                               std::vector<BigRational> level_fractions,
                               BigRational request_rate);

  /// N×M×B variant from aggregate fractions a_0 … a_{n−1}.
  static HierarchicalModel nxm_from_aggregate(
      std::vector<int> cluster_sizes, int favorite_group_size,
      std::vector<BigRational> aggregate_fractions,
      BigRational request_rate);

  // -- RequestModel -------------------------------------------------------
  int num_processors() const noexcept override { return num_processors_; }
  int num_memories() const noexcept override { return num_memories_; }
  double request_rate() const noexcept override { return rate_double_; }
  double fraction(int p, int m) const override;

  // -- model structure ----------------------------------------------------
  /// Number of hierarchy levels n.
  int levels() const noexcept { return static_cast<int>(ks_.size()); }
  const std::vector<int>& cluster_sizes() const noexcept { return ks_; }
  /// k'_n for the N×M×B variant; equals 1 for N×N×B by convention.
  int favorite_group_size() const noexcept { return favorite_group_size_; }
  bool is_nxn() const noexcept { return kind_ == Kind::kNxN; }

  /// Per-module fractions m_t, exact. Size n+1 (N×N×B) or n (N×M×B).
  const std::vector<BigRational>& level_fractions() const noexcept {
    return fractions_;
  }
  /// Number of *modules* a fixed processor addresses at fraction m_t
  /// (N_t of eq. 1 for N×N×B; M_t for N×M×B).
  const std::vector<long>& target_counts() const noexcept {
    return target_counts_;
  }
  /// Number of *processors* that address a fixed module at fraction m_t
  /// (equals target_counts for N×N×B by symmetry).
  const std::vector<long>& requester_counts() const noexcept {
    return requester_counts_;
  }

  /// Level index t of the pair (p, m): 0 = favorite, …
  int level_of(int p, int m) const;

  // -- closed forms -------------------------------------------------------
  /// Eq. 2 — exact: X = 1 − Π_t (1 − r·m_t)^{R_t} over requester counts.
  BigRational exact_request_probability() const;
  /// Eq. 2 in double precision.
  double closed_form_request_probability() const;
  /// Eq. 2 evaluated at an overridden request rate (for the adjusted-rate
  /// resubmission fixed point).
  double request_probability_at(double rate) const;
  /// Exact request rate r.
  const BigRational& exact_request_rate() const noexcept { return rate_; }

 private:
  enum class Kind { kNxN, kNxM };

  HierarchicalModel(Kind kind, std::vector<int> ks, int favorite_group_size,
                    std::vector<BigRational> fractions, BigRational rate);

  /// Deepest hierarchy depth at which indices a and b share a block, given
  /// per-depth block sizes; returns a depth in [0, sizes.size()-1].
  static int deepest_shared_depth(long a, long b,
                                  const std::vector<long>& block_sizes);

  Kind kind_;
  std::vector<int> ks_;
  int favorite_group_size_;
  std::vector<BigRational> fractions_;
  BigRational rate_;
  double rate_double_;
  int num_processors_;
  int num_memories_;
  std::vector<long> target_counts_;
  std::vector<long> requester_counts_;
  std::vector<double> fraction_doubles_;
  std::vector<long> proc_block_sizes_;  // s_d over processor indices
  std::vector<long> mem_block_sizes_;   // block sizes over module indices
};

}  // namespace mbus
