// The hot-spot referencing model (Pfister & Norton, 1985): every
// processor directs an extra fraction `h` of its traffic at one shared
// hot module and spreads the remainder uniformly, i.e.
//     fraction(p, hot)   = h + (1 − h)/M
//     fraction(p, other) = (1 − h)/M.
// This is the canonical *asymmetric* workload: the hot module's request
// probability X_hot exceeds the others', so the symmetric closed forms of
// the paper do not apply and the Poisson-binomial generalization in
// analysis/asymmetric.hpp is required.
#pragma once

#include "bignum/bigrational.hpp"
#include "workload/request_model.hpp"

namespace mbus {

class HotSpotModel final : public RequestModel {
 public:
  /// `hot_fraction` = h in [0, 1]; `hot_module` in [0, M).
  HotSpotModel(int num_processors, int num_memories, int hot_module,
               BigRational hot_fraction, BigRational request_rate);

  int num_processors() const noexcept override { return num_processors_; }
  int num_memories() const noexcept override { return num_memories_; }
  double request_rate() const noexcept override { return rate_double_; }
  double fraction(int p, int m) const override;

  int hot_module() const noexcept { return hot_module_; }

  /// X of the hot module: 1 − (1 − r(h + (1−h)/M))^N.
  double hot_request_probability() const;
  BigRational exact_hot_request_probability() const;

  /// X of every other module: 1 − (1 − r(1−h)/M)^N.
  double cold_request_probability() const;
  BigRational exact_cold_request_probability() const;

 private:
  int num_processors_;
  int num_memories_;
  int hot_module_;
  BigRational hot_fraction_;
  BigRational rate_;
  double rate_double_;
  double hot_double_;
  double cold_double_;
};

}  // namespace mbus
