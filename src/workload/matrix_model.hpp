// A fully general requesting model backed by an explicit N×M row-stochastic
// fraction matrix. Used for testing the closed forms against brute force
// and for modelling workloads outside the hierarchical family (e.g. the
// favorite-memory model of Das & Bhuyan with arbitrary skew).
#pragma once

#include <vector>

#include "workload/request_model.hpp"

namespace mbus {

class MatrixModel final : public RequestModel {
 public:
  /// `fractions[p][m]` = P(request from p targets m). Every row must sum
  /// to 1 within 1e-9; all rows must have the same length.
  MatrixModel(std::vector<std::vector<double>> fractions,
              double request_rate);

  /// Das–Bhuyan favorite-memory model: processor p addresses module
  /// (p mod M) with probability `favorite_fraction` and spreads the rest
  /// evenly over the other modules.
  static MatrixModel das_bhuyan(int num_processors, int num_memories,
                                double favorite_fraction,
                                double request_rate);

  int num_processors() const noexcept override {
    return static_cast<int>(fractions_.size());
  }
  int num_memories() const noexcept override {
    return fractions_.empty() ? 0
                              : static_cast<int>(fractions_.front().size());
  }
  double request_rate() const noexcept override { return rate_; }
  double fraction(int p, int m) const override;

 private:
  std::vector<std::vector<double>> fractions_;
  double rate_;
};

}  // namespace mbus
