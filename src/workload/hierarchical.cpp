#include "workload/hierarchical.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

namespace {

/// Block sizes s_d = Π_{j>d} sizes[j] for d = 0 … sizes.size(): s_d is the
/// number of leaves in a depth-d block of the hierarchy (s_0 = all leaves,
/// s_n = 1). The returned vector has sizes.size()+1 entries.
std::vector<long> block_sizes_of(const std::vector<int>& sizes) {
  std::vector<long> out(sizes.size() + 1, 1);
  for (std::size_t d = sizes.size(); d-- > 0;) {
    out[d] = out[d + 1] * sizes[d];
  }
  return out;
}

long checked_product(const std::vector<int>& sizes) {
  long product = 1;
  for (int k : sizes) {
    MBUS_EXPECTS(k >= 1, "cluster sizes must be >= 1");
    product *= k;
    MBUS_EXPECTS(product <= (1L << 30), "hierarchy too large");
  }
  return product;
}

}  // namespace

HierarchicalModel::HierarchicalModel(Kind kind, std::vector<int> ks,
                                     int favorite_group_size,
                                     std::vector<BigRational> fractions,
                                     BigRational rate)
    : kind_(kind),
      ks_(std::move(ks)),
      favorite_group_size_(favorite_group_size),
      fractions_(std::move(fractions)),
      rate_(std::move(rate)) {
  MBUS_EXPECTS(!ks_.empty(), "need at least one hierarchy level");
  const long n_procs = checked_product(ks_);
  MBUS_EXPECTS(favorite_group_size_ >= 1,
               "favorite group size must be >= 1");
  MBUS_EXPECTS(!rate_.is_negative() && rate_ <= BigRational(1),
               "request rate must lie in [0, 1]");

  const int n = static_cast<int>(ks_.size());
  const std::size_t expected_fractions =
      kind_ == Kind::kNxN ? static_cast<std::size_t>(n) + 1
                          : static_cast<std::size_t>(n);
  MBUS_EXPECTS(fractions_.size() == expected_fractions,
               cat("expected ", expected_fractions, " level fractions, got ",
                   fractions_.size()));
  for (const auto& f : fractions_) {
    MBUS_EXPECTS(!f.is_negative(), "level fractions must be >= 0");
  }

  num_processors_ = static_cast<int>(n_procs);
  proc_block_sizes_ = block_sizes_of(ks_);

  if (kind_ == Kind::kNxN) {
    MBUS_EXPECTS(favorite_group_size_ == 1,
                 "N×N×B variant has exactly one favorite module");
    num_memories_ = num_processors_;
    mem_block_sizes_ = proc_block_sizes_;
    // T_0 = 1; T_t = s_{n−t} − s_{n−t+1}  (eq. 1).
    target_counts_.assign(fractions_.size(), 0);
    target_counts_[0] = 1;
    for (int t = 1; t <= n; ++t) {
      target_counts_[static_cast<std::size_t>(t)] =
          proc_block_sizes_[static_cast<std::size_t>(n - t)] -
          proc_block_sizes_[static_cast<std::size_t>(n - t + 1)];
    }
    requester_counts_ = target_counts_;
  } else {
    // Subcluster tree over the first n−1 levels.
    std::vector<int> subcluster_sizes(ks_.begin(), ks_.end() - 1);
    const std::vector<long> sub_blocks = block_sizes_of(subcluster_sizes);
    const long n_sub = sub_blocks.empty() ? 1 : sub_blocks[0];
    num_memories_ = static_cast<int>(n_sub * favorite_group_size_);

    target_counts_.assign(fractions_.size(), 0);
    requester_counts_.assign(fractions_.size(), 0);
    target_counts_[0] = favorite_group_size_;
    requester_counts_[0] = ks_.back();
    for (int t = 1; t <= n - 1; ++t) {
      const long sub_count =
          sub_blocks[static_cast<std::size_t>(n - 1 - t)] -
          sub_blocks[static_cast<std::size_t>(n - t)];
      target_counts_[static_cast<std::size_t>(t)] =
          sub_count * favorite_group_size_;
      requester_counts_[static_cast<std::size_t>(t)] =
          sub_count * ks_.back();
    }
    mem_block_sizes_ = sub_blocks;
  }

  // Normalization Σ m_t · T_t == 1 (exact).
  BigRational total;
  for (std::size_t t = 0; t < fractions_.size(); ++t) {
    total += fractions_[t] * BigRational(target_counts_[t]);
  }
  MBUS_EXPECTS(total == BigRational(1),
               "level fractions must satisfy sum(m_t * N_t) == 1, got " +
                   total.to_string());

  rate_double_ = rate_.to_double();
  fraction_doubles_.reserve(fractions_.size());
  for (const auto& f : fractions_) {
    fraction_doubles_.push_back(f.to_double());
  }
}

HierarchicalModel HierarchicalModel::nxn(
    std::vector<int> cluster_sizes, std::vector<BigRational> level_fractions,
    BigRational request_rate) {
  return HierarchicalModel(Kind::kNxN, std::move(cluster_sizes), 1,
                           std::move(level_fractions),
                           std::move(request_rate));
}

HierarchicalModel HierarchicalModel::nxn_from_aggregate(
    std::vector<int> cluster_sizes,
    std::vector<BigRational> aggregate_fractions, BigRational request_rate) {
  const int n = static_cast<int>(cluster_sizes.size());
  MBUS_EXPECTS(aggregate_fractions.size() ==
                   static_cast<std::size_t>(n) + 1,
               "N×N×B aggregate needs n+1 fractions");
  // Derive the counts the same way the constructor will.
  const std::vector<long> blocks = block_sizes_of(cluster_sizes);
  std::vector<BigRational> per_module(aggregate_fractions.size());
  per_module[0] = aggregate_fractions[0];
  for (int t = 1; t <= n; ++t) {
    const long count = blocks[static_cast<std::size_t>(n - t)] -
                       blocks[static_cast<std::size_t>(n - t + 1)];
    if (count == 0) {
      MBUS_EXPECTS(aggregate_fractions[static_cast<std::size_t>(t)].is_zero(),
                   "aggregate fraction on an empty level must be zero");
      per_module[static_cast<std::size_t>(t)] = BigRational();
    } else {
      per_module[static_cast<std::size_t>(t)] =
          aggregate_fractions[static_cast<std::size_t>(t)] /
          BigRational(count);
    }
  }
  return nxn(std::move(cluster_sizes), std::move(per_module),
             std::move(request_rate));
}

HierarchicalModel HierarchicalModel::nxm(
    std::vector<int> cluster_sizes, int favorite_group_size,
    std::vector<BigRational> level_fractions, BigRational request_rate) {
  return HierarchicalModel(Kind::kNxM, std::move(cluster_sizes),
                           favorite_group_size, std::move(level_fractions),
                           std::move(request_rate));
}

HierarchicalModel HierarchicalModel::nxm_from_aggregate(
    std::vector<int> cluster_sizes, int favorite_group_size,
    std::vector<BigRational> aggregate_fractions, BigRational request_rate) {
  const int n = static_cast<int>(cluster_sizes.size());
  MBUS_EXPECTS(aggregate_fractions.size() == static_cast<std::size_t>(n),
               "N×M×B aggregate needs n fractions");
  MBUS_EXPECTS(favorite_group_size >= 1,
               "favorite group size must be >= 1");
  std::vector<int> subcluster_sizes(cluster_sizes.begin(),
                                    cluster_sizes.end() - 1);
  const std::vector<long> sub_blocks = block_sizes_of(subcluster_sizes);
  std::vector<BigRational> per_module(aggregate_fractions.size());
  per_module[0] = aggregate_fractions[0] / BigRational(favorite_group_size);
  for (int t = 1; t <= n - 1; ++t) {
    const long count = (sub_blocks[static_cast<std::size_t>(n - 1 - t)] -
                        sub_blocks[static_cast<std::size_t>(n - t)]) *
                       favorite_group_size;
    if (count == 0) {
      MBUS_EXPECTS(aggregate_fractions[static_cast<std::size_t>(t)].is_zero(),
                   "aggregate fraction on an empty level must be zero");
      per_module[static_cast<std::size_t>(t)] = BigRational();
    } else {
      per_module[static_cast<std::size_t>(t)] =
          aggregate_fractions[static_cast<std::size_t>(t)] /
          BigRational(count);
    }
  }
  return nxm(std::move(cluster_sizes), favorite_group_size,
             std::move(per_module), std::move(request_rate));
}

int HierarchicalModel::deepest_shared_depth(
    long a, long b, const std::vector<long>& block_sizes) {
  for (std::size_t d = block_sizes.size(); d-- > 0;) {
    if (a / block_sizes[d] == b / block_sizes[d]) {
      return static_cast<int>(d);
    }
  }
  MBUS_ASSERT(false, "depth 0 always shares the root block");
  return 0;
}

int HierarchicalModel::level_of(int p, int m) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors_, "processor index out of range");
  MBUS_EXPECTS(m >= 0 && m < num_memories_, "module index out of range");
  const int n = static_cast<int>(ks_.size());
  if (kind_ == Kind::kNxN) {
    // Depth d where p and m last share a block; favorite iff p == m.
    const int d = deepest_shared_depth(p, m, proc_block_sizes_);
    return n - d;
  }
  const long p_sub = static_cast<long>(p) / ks_.back();
  const long m_sub = static_cast<long>(m) / favorite_group_size_;
  const int d = deepest_shared_depth(p_sub, m_sub, mem_block_sizes_);
  return (n - 1) - d;
}

double HierarchicalModel::fraction(int p, int m) const {
  return fraction_doubles_[static_cast<std::size_t>(level_of(p, m))];
}

BigRational HierarchicalModel::exact_request_probability() const {
  // Eq. 2: X = 1 − Π_t (1 − r·m_t)^{R_t}, R_t = requesters at fraction m_t.
  BigRational miss_all(1);
  for (std::size_t t = 0; t < fractions_.size(); ++t) {
    const BigRational one_minus = BigRational(1) - rate_ * fractions_[t];
    miss_all *= one_minus.pow(requester_counts_[t]);
  }
  return BigRational(1) - miss_all;
}

double HierarchicalModel::closed_form_request_probability() const {
  return request_probability_at(rate_double_);
}

double HierarchicalModel::request_probability_at(double rate) const {
  MBUS_EXPECTS(rate >= 0.0 && rate <= 1.0,
               "request rate must lie in [0, 1]");
  double miss_all = 1.0;
  for (std::size_t t = 0; t < fractions_.size(); ++t) {
    const double one_minus = 1.0 - rate * fraction_doubles_[t];
    miss_all *= std::pow(one_minus,
                         static_cast<double>(requester_counts_[t]));
  }
  return 1.0 - miss_all;
}

}  // namespace mbus
