#include "workload/request_model.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

double RequestModel::module_request_probability(int m) const {
  MBUS_EXPECTS(m >= 0 && m < num_memories(), "module index out of range");
  const double r = request_rate();
  double miss_all = 1.0;
  for (int p = 0; p < num_processors(); ++p) {
    miss_all *= 1.0 - r * fraction(p, m);
  }
  return 1.0 - miss_all;
}

double RequestModel::symmetric_request_probability(double tol) const {
  const double x0 = module_request_probability(0);
  for (int m = 1; m < num_memories(); ++m) {
    const double xm = module_request_probability(m);
    MBUS_EXPECTS(std::fabs(xm - x0) <= tol,
                 cat("model is not symmetric: X_0=", x0, " X_", m, "=", xm));
  }
  return x0;
}

std::vector<double> RequestModel::fraction_row(int p) const {
  MBUS_EXPECTS(p >= 0 && p < num_processors(),
               "processor index out of range");
  std::vector<double> row(static_cast<std::size_t>(num_memories()));
  for (int m = 0; m < num_memories(); ++m) {
    row[static_cast<std::size_t>(m)] = fraction(p, m);
  }
  return row;
}

void RequestModel::validate(double tol) const {
  MBUS_EXPECTS(num_processors() > 0, "model must have processors");
  MBUS_EXPECTS(num_memories() > 0, "model must have memory modules");
  const double r = request_rate();
  MBUS_EXPECTS(r >= 0.0 && r <= 1.0, "request rate must lie in [0, 1]");
  for (int p = 0; p < num_processors(); ++p) {
    double row_sum = 0.0;
    for (int m = 0; m < num_memories(); ++m) {
      const double f = fraction(p, m);
      MBUS_EXPECTS(f >= -tol && f <= 1.0 + tol,
                   cat("fraction(", p, ",", m, ") = ", f, " out of [0,1]"));
      row_sum += f;
    }
    MBUS_EXPECTS(std::fabs(row_sum - 1.0) <= tol,
                 cat("fractions of processor ", p, " sum to ", row_sum,
                     ", expected 1"));
  }
}

}  // namespace mbus
