// The printed numerical results of Chen & Sheu, Tables II–VI, transcribed
// cell by cell. Shared by the reproduction test-suite (which asserts our
// closed forms match every cell to the paper's printed precision) and by
// the bench binaries (which print paper-vs-computed columns).
//
// Cells that are illegible in the available scan are simply absent; the
// benches recompute the full grids regardless.
#pragma once

#include <optional>
#include <vector>

namespace mbus::paperdata {

enum class PaperWorkload { kHierarchical, kUniform };

enum class PaperTable {
  kTable2,  // full connection, r = 1.0
  kTable3,  // full connection, r = 0.5
  kTable4,  // single connection, r ∈ {1.0, 0.5}
  kTable5,  // partial bus g = 2, r ∈ {1.0, 0.5}
  kTable6,  // K = B classes,    r ∈ {1.0, 0.5}
};

struct PaperCell {
  PaperTable table;
  int n;        // N = M
  int b;        // number of buses
  double r;     // request rate
  PaperWorkload workload;
  double value; // memory bandwidth as printed (2 decimals or fewer)
};

/// Every legible printed cell of Tables II–VI.
const std::vector<PaperCell>& all_cells();

/// Cells of one table.
std::vector<PaperCell> cells_of(PaperTable table);

/// The printed value for a configuration, if that cell is legible.
std::optional<double> lookup(PaperTable table, int n, int b, double r,
                             PaperWorkload workload);

/// The paper's common workload setup for Section IV: a two-level
/// hierarchy with k_1 = 4 clusters and aggregate fractions 0.6/0.3/0.1.
/// (Returned as the {k_1, k_2} cluster vector for a given N.)
std::vector<int> section4_cluster_sizes(int n);

}  // namespace mbus::paperdata
