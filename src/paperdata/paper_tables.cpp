#include "paperdata/paper_tables.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mbus::paperdata {

namespace {

constexpr auto kH = PaperWorkload::kHierarchical;
constexpr auto kU = PaperWorkload::kUniform;

/// Append the (B = 1..values.size()) column of a Table II/III block.
void append_column(std::vector<PaperCell>& out, PaperTable table, int n,
                   double r, PaperWorkload wl,
                   const std::vector<double>& values) {
  int b = 1;
  for (const double v : values) {
    if (v >= 0.0) {  // negative marks an illegible cell
      out.push_back(PaperCell{table, n, b, r, wl, v});
    }
    ++b;
  }
}

/// Append cells at power-of-two bus counts (Tables IV–VI style).
void append_pow2(std::vector<PaperCell>& out, PaperTable table, int n,
                 double r, PaperWorkload wl, int first_b,
                 const std::vector<double>& values) {
  int b = first_b;
  for (const double v : values) {
    if (v >= 0.0) {
      out.push_back(PaperCell{table, n, b, r, wl, v});
    }
    b *= 2;
  }
}

std::vector<PaperCell> build_all() {
  std::vector<PaperCell> out;
  constexpr double kIllegible = -1.0;

  // ----- Table II: full bus–memory connection, r = 1.0 -------------------
  append_column(out, PaperTable::kTable2, 8, 1.0, kH,
                {1.0, 2.0, 3.0, 3.97, 4.85, 5.52, 5.88, 5.98});
  append_column(out, PaperTable::kTable2, 8, 1.0, kU,
                {1.0, 2.0, 2.97, 3.87, 4.59, 5.04, 5.22, 5.25});
  append_column(out, PaperTable::kTable2, 12, 1.0, kH,
                {1.0, 2.0, 3.0, 4.0, 5.0, 5.98, 6.91, 7.73, 8.34, 8.70,
                 8.84, 8.86});
  append_column(out, PaperTable::kTable2, 12, 1.0, kU,
                {1.0, 2.0, 3.0, 3.99, 4.97, 5.88, 6.66, 7.24, 7.58, 7.73,
                 7.77, 7.78});
  append_column(out, PaperTable::kTable2, 16, 1.0, kH,
                {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 7.99, 8.95, 9.85,
                 10.62, 11.20, 11.56, 11.72, 11.77, 11.78});
  // The N=16 uniform column has two cells lost to scan damage (B=9, 10).
  append_column(out, PaperTable::kTable2, 16, 1.0, kU,
                {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 6.97, 7.89, kIllegible,
                 kIllegible, 9.86, 10.13, 10.25, 10.29, kIllegible, 10.30});

  // ----- Table III: full bus–memory connection, r = 0.5 ------------------
  append_column(out, PaperTable::kTable3, 8, 0.5, kH,
                {0.99, 1.91, 2.67, 3.15, 3.38, 3.46, 3.47, 3.47});
  append_column(out, PaperTable::kTable3, 8, 0.5, kU,
                {0.98, 1.88, 2.57, 2.99, 3.16, 3.22, 3.23, 3.23});
  append_column(out, PaperTable::kTable3, 12, 0.5, kH,
                {1.0, 1.99, 2.93, 3.76, 4.41, 4.83, 5.04, 5.13, 5.16, 5.16,
                 5.16, 5.16});
  append_column(out, PaperTable::kTable3, 12, 0.5, kU,
                {1.0, 1.98, 2.89, 3.67, 4.23, 4.57, 4.72, 4.78, 4.80, 4.80,
                 4.80, 4.80});
  // N=16 columns lose one row each to scan damage (B=6).
  append_column(out, PaperTable::kTable3, 16, 0.5, kH,
                {1.0, 2.0, 2.99, 3.95, 4.83, kIllegible, 6.15, 6.52, 6.73,
                 6.82, 6.85, 6.87, 6.87, 6.87, 6.87, 6.87});
  append_column(out, PaperTable::kTable3, 16, 0.5, kU,
                {1.0, 2.0, 2.98, 3.91, 4.74, kIllegible, 5.87, 6.15, 6.29,
                 6.35, 6.37, 6.37, 6.37, 6.37, 6.37, 6.37});

  // ----- Table IV: single bus–memory connection ---------------------------
  // r = 1.0 (clean in the scan).
  append_pow2(out, PaperTable::kTable4, 8, 1.0, kH, 1,
              {1.0, 1.99, 3.74, 5.97});
  append_pow2(out, PaperTable::kTable4, 8, 1.0, kU, 1,
              {1.0, 1.97, 3.53, 5.25});
  append_pow2(out, PaperTable::kTable4, 16, 1.0, kH, 1,
              {1.0, 2.0, 3.98, 7.44, 11.78});
  append_pow2(out, PaperTable::kTable4, 16, 1.0, kU, 1,
              {1.0, 2.0, 3.94, 6.99, 10.30});
  append_pow2(out, PaperTable::kTable4, 32, 1.0, kH, 1,
              {1.0, 2.0, 4.0, 7.96, 14.87, 23.48});
  append_pow2(out, PaperTable::kTable4, 32, 1.0, kU, 1,
              {1.0, 2.0, 4.0, 7.86, 13.90, 20.41});
  // r = 0.5 (heavily damaged in the scan; only the unambiguous cells).
  append_pow2(out, PaperTable::kTable4, 8, 0.5, kH, 1,
              {kIllegible, kIllegible, kIllegible, 3.47});
  append_pow2(out, PaperTable::kTable4, 8, 0.5, kU, 1,
              {0.98, kIllegible, kIllegible, 3.23});
  append_pow2(out, PaperTable::kTable4, 16, 0.5, kH, 1,
              {1.0, 1.98, kIllegible, 5.39, 6.87});
  append_pow2(out, PaperTable::kTable4, 16, 0.5, kU, 1,
              {1.0, kIllegible, kIllegible, kIllegible, 6.37});
  append_pow2(out, PaperTable::kTable4, 32, 0.5, kH, 1,
              {1.0, 2.0, 3.95, 7.14, 10.76, 13.69});
  append_pow2(out, PaperTable::kTable4, 32, 0.5, kU, 1,
              {1.0, 2.0, 3.93, 6.93, 10.16, 12.67});

  // ----- Table V: partial bus networks, g = 2 -----------------------------
  append_pow2(out, PaperTable::kTable5, 8, 1.0, kH, 2, {1.99, 3.89, 5.97});
  append_pow2(out, PaperTable::kTable5, 8, 1.0, kU, 2, {1.97, 3.73, 5.25});
  append_pow2(out, PaperTable::kTable5, 16, 1.0, kH, 2,
              {2.0, 4.0, 7.92, 11.78});
  append_pow2(out, PaperTable::kTable5, 16, 1.0, kU, 2,
              {2.0, 3.99, 7.71, 10.30});
  append_pow2(out, PaperTable::kTable5, 32, 1.0, kH, 2,
              {2.0, 4.0, 8.0, 15.97, 23.48});
  append_pow2(out, PaperTable::kTable5, 32, 1.0, kU, 2,
              {2.0, 4.0, 8.0, 15.76, 20.41});
  append_pow2(out, PaperTable::kTable5, 8, 0.5, kH, 2, {1.79, 2.96, 3.47});
  append_pow2(out, PaperTable::kTable5, 8, 0.5, kU, 2, {1.75, 2.81, 3.23});
  append_pow2(out, PaperTable::kTable5, 16, 0.5, kH, 2,
              {1.98, 3.82, 6.25, 6.87});
  append_pow2(out, PaperTable::kTable5, 16, 0.5, kU, 2,
              {1.97, 3.75, 5.92, 6.37});
  append_pow2(out, PaperTable::kTable5, 32, 0.5, kH, 2,
              {2.0, 4.0, 7.89, 13.02, 13.69});
  append_pow2(out, PaperTable::kTable5, 32, 0.5, kU, 2,
              {2.0, 3.99, 7.81, 12.24, 12.67});

  // ----- Table VI: partial bus networks with K = B classes ----------------
  append_pow2(out, PaperTable::kTable6, 8, 1.0, kH, 2, {2.0, 3.85, 5.97});
  append_pow2(out, PaperTable::kTable6, 8, 1.0, kU, 2, {1.98, 3.68, 5.25});
  append_pow2(out, PaperTable::kTable6, 16, 1.0, kH, 2,
              {2.0, 3.99, 7.71, 11.78});
  append_pow2(out, PaperTable::kTable6, 16, 1.0, kU, 2,
              {2.0, 3.98, 7.35, 10.30});
  append_pow2(out, PaperTable::kTable6, 32, 1.0, kH, 2,
              {2.0, 4.0, 7.99, 15.44, 23.48});
  append_pow2(out, PaperTable::kTable6, 32, 1.0, kU, 2,
              {2.0, 4.0, 7.97, 14.70, 20.41});
  append_pow2(out, PaperTable::kTable6, 8, 0.5, kH, 2, {1.85, 2.90, 3.47});
  append_pow2(out, PaperTable::kTable6, 8, 0.5, kU, 2, {1.81, 2.75, 3.23});
  append_pow2(out, PaperTable::kTable6, 16, 0.5, kH, 2,
              {1.99, 3.78, 5.81, 6.87});
  append_pow2(out, PaperTable::kTable6, 16, 0.5, kU, 2,
              {1.98, 3.70, 5.51, 6.37});
  append_pow2(out, PaperTable::kTable6, 32, 0.5, kH, 2,
              {2.0, 3.99, 7.64, 11.66, 13.69});
  append_pow2(out, PaperTable::kTable6, 32, 0.5, kU, 2,
              {2.0, 3.98, 7.49, 11.02, 12.67});

  return out;
}

}  // namespace

const std::vector<PaperCell>& all_cells() {
  static const std::vector<PaperCell> cells = build_all();
  return cells;
}

std::vector<PaperCell> cells_of(PaperTable table) {
  std::vector<PaperCell> out;
  for (const PaperCell& c : all_cells()) {
    if (c.table == table) out.push_back(c);
  }
  return out;
}

std::optional<double> lookup(PaperTable table, int n, int b, double r,
                             PaperWorkload workload) {
  for (const PaperCell& c : all_cells()) {
    if (c.table == table && c.n == n && c.b == b && c.r == r &&
        c.workload == workload) {
      return c.value;
    }
  }
  return std::nullopt;
}

std::vector<int> section4_cluster_sizes(int n) {
  MBUS_EXPECTS(n % 4 == 0, "Section IV partitions N into 4 clusters");
  return {4, n / 4};
}

}  // namespace mbus::paperdata
