#include "sim/fault.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mbus {

namespace {

void sort_events(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

void check_events(const std::vector<FaultEvent>& events, int num_buses,
                  int num_modules, bool allow_modules) {
  for (const FaultEvent& e : events) {
    MBUS_EXPECTS(e.cycle >= 0, "fault event cycle must be >= 0");
    if (e.kind == FaultKind::kBus) {
      MBUS_EXPECTS(e.component >= 0 && e.component < num_buses,
                   "fault event bus index out of range");
    } else {
      MBUS_EXPECTS(allow_modules,
                   "module fault events require the module-aware timeline "
                   "overload");
      MBUS_EXPECTS(e.component >= 0 && e.component < num_modules,
                   "fault event module index out of range");
    }
  }
}

}  // namespace

FaultPlan FaultPlan::static_failures(int num_buses,
                                     const std::vector<int>& failed_buses) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  FaultPlan plan;
  plan.initial_.assign(static_cast<std::size_t>(num_buses), false);
  for (const int b : failed_buses) {
    MBUS_EXPECTS(b >= 0 && b < num_buses, "failed bus index out of range");
    plan.initial_[static_cast<std::size_t>(b)] = true;
  }
  return plan;
}

FaultPlan FaultPlan::static_failures(int num_buses,
                                     const std::vector<int>& failed_buses,
                                     int num_modules,
                                     const std::vector<int>& failed_modules) {
  MBUS_EXPECTS(num_modules >= 1, "need at least one module");
  FaultPlan plan = static_failures(num_buses, failed_buses);
  plan.initial_modules_.assign(static_cast<std::size_t>(num_modules), false);
  for (const int m : failed_modules) {
    MBUS_EXPECTS(m >= 0 && m < num_modules,
                 "failed module index out of range");
    plan.initial_modules_[static_cast<std::size_t>(m)] = true;
  }
  return plan;
}

FaultPlan FaultPlan::timeline(int num_buses, std::vector<FaultEvent> events) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  check_events(events, num_buses, 0, /*allow_modules=*/false);
  sort_events(events);
  FaultPlan plan;
  plan.initial_.assign(static_cast<std::size_t>(num_buses), false);
  plan.events_ = std::move(events);
  return plan;
}

FaultPlan FaultPlan::timeline(int num_buses, int num_modules,
                              std::vector<FaultEvent> events) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  MBUS_EXPECTS(num_modules >= 1, "need at least one module");
  check_events(events, num_buses, num_modules, /*allow_modules=*/true);
  sort_events(events);
  FaultPlan plan;
  plan.initial_.assign(static_cast<std::size_t>(num_buses), false);
  plan.initial_modules_.assign(static_cast<std::size_t>(num_modules), false);
  plan.events_ = std::move(events);
  return plan;
}

}  // namespace mbus
