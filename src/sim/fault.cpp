#include "sim/fault.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mbus {

FaultPlan FaultPlan::static_failures(int num_buses,
                                     const std::vector<int>& failed_buses) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  FaultPlan plan;
  plan.initial_.assign(static_cast<std::size_t>(num_buses), false);
  for (const int b : failed_buses) {
    MBUS_EXPECTS(b >= 0 && b < num_buses, "failed bus index out of range");
    plan.initial_[static_cast<std::size_t>(b)] = true;
  }
  return plan;
}

FaultPlan FaultPlan::timeline(int num_buses, std::vector<FaultEvent> events) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  for (const FaultEvent& e : events) {
    MBUS_EXPECTS(e.bus >= 0 && e.bus < num_buses,
                 "fault event bus index out of range");
    MBUS_EXPECTS(e.cycle >= 0, "fault event cycle must be >= 0");
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  FaultPlan plan;
  plan.initial_.assign(static_cast<std::size_t>(num_buses), false);
  plan.events_ = std::move(events);
  return plan;
}

}  // namespace mbus
