#include "sim/trace.hpp"

#include "util/error.hpp"

namespace mbus {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kGrant:
      return "grant";
    case TraceEventKind::kBlocked:
      return "blocked";
  }
  MBUS_ASSERT(false, "unknown trace event kind");
  return "";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : buffer_(capacity) {
  MBUS_EXPECTS(capacity > 0, "trace capacity must be positive");
}

void TraceBuffer::record(const TraceEvent& event) {
  if (count_ == buffer_.size()) ++dropped_;
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  if (count_ < buffer_.size()) ++count_;
}

std::size_t TraceBuffer::size() const noexcept { return count_; }

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start =
      (head_ + buffer_.size() - count_) % buffer_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

void TraceBuffer::write_csv(std::ostream& out) const {
  out << "cycle,kind,processor,module,bus\n";
  for (const TraceEvent& e : snapshot()) {
    out << e.cycle << ',' << to_string(e.kind) << ',' << e.processor << ','
        << e.module << ',' << e.bus << '\n';
  }
}

void TraceBuffer::clear() noexcept {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

}  // namespace mbus
