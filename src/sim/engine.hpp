// A cycle-accurate synchronous simulator of the multiprocessor
// multiple-bus system (assumptions 1–5, Section III-A).
//
// Each cycle:
//   1. Every processor issues a request with probability r, choosing a
//      destination module from its request-model fraction row (O(1) alias
//      sampling). In resubmission mode, a processor whose last request was
//      blocked re-issues the same request instead (relaxing assumption 5).
//   2. Stage-one arbitration: the per-module N-user/1-server arbiters each
//      select one winning processor.
//   3. Stage-two arbitration: the scheme's bus-assignment policy grants
//      buses to the selected memory services (see sim/bus_assign.hpp).
//   4. Winners complete in one memory cycle (assumption 4 folds wire and
//      arbitration delay into the cycle); losers are dropped or retained
//      according to the resubmission mode.
//
// The analytic formulas assume per-module request indicators are
// independent; the simulator enforces the true one-request-per-processor
// coupling, so a small systematic gap between the two is expected and is
// itself a result we report (EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/arbiter.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"
#include "workload/request_model.hpp"

namespace mbus {

/// Which cycle-loop implementation the simulator runs.
///
///   * kReference — the scalar per-processor/per-module loops above; the
///     semantic ground truth.
///   * kFast      — the structure-of-arrays bitmask kernel
///     (sim/kernel.hpp). Bit-identical to the reference for the same seed
///     whenever fast_kernel_supported() holds (N, M, B <= 64, no trace);
///     unsupported configurations silently fall back to the reference
///     engine, so results never depend on which kind was requested.
enum class EngineKind { kReference, kFast };

/// "reference" or "fast" (the --engine CLI vocabulary).
std::string to_string(EngineKind kind);

/// Parse "reference"/"ref" or "fast"; throws InvalidArgument otherwise.
EngineKind engine_kind_from_string(const std::string& name);

struct SimConfig {
  /// Measured cycles (after warmup).
  std::int64_t cycles = 200000;
  /// Cycles discarded before measurement starts.
  std::int64_t warmup = 1000;
  std::uint64_t seed = 0xC0FFEE;
  /// Relax assumption 5: blocked requests are re-issued next cycle.
  bool resubmit_blocked = false;
  /// Memory/bus occupancy of one transfer in cycles (assumption 1 uses 1).
  /// With T > 1 a granted module and its bus stay busy for T cycles;
  /// requests to a busy module are blocked (the "referenced memory module
  /// might be busy" conflict of Section II-A).
  std::int64_t transfer_cycles = 1;
  /// Stage-one policy (the paper uses random selection).
  ArbitrationPolicy memory_arbitration = ArbitrationPolicy::kRandom;
  /// Stage-two tie-break policy where the scheme needs one.
  ArbitrationPolicy bus_arbitration = ArbitrationPolicy::kRandom;
  /// Number of equal batches for the batch-means confidence interval.
  int batches = 20;
  /// When positive, also record the bandwidth of consecutive measurement
  /// windows of this many cycles (SimResult::window_bandwidth) — used by
  /// the transient-fault studies to see throughput drop and recover.
  std::int64_t window_cycles = 0;
  /// Fault injection over buses and memory modules; empty plan = all
  /// components healthy. Requests to a failed module are blocked until
  /// its repair event.
  FaultPlan faults;
  /// Optional event trace (non-owning; must outlive the run). Grant and
  /// blocked events of measured cycles are recorded.
  TraceBuffer* trace = nullptr;
  /// Cycle-loop implementation. kFast silently falls back to the
  /// reference loop when fast_kernel_supported() is false for this
  /// configuration, so results never depend on which kind was requested.
  EngineKind engine = EngineKind::kReference;
  /// Cooperative cancellation (non-owning; may be null). Both engines
  /// poll the flag every 1024 cycles and throw `mbus::Cancelled` once it
  /// is set — the hook that lets graceful shutdown (util/shutdown.hpp)
  /// and per-point deadlines (util/watchdog.hpp) abort a long run
  /// promptly. Polling never touches the RNG, so results with an unfired
  /// flag are bit-identical to runs with no flag at all.
  const std::atomic<bool>* cancel = nullptr;
};

class Simulator {
 public:
  /// `topology` and `model` must agree on N and M and outlive the
  /// simulator. The model is validated on construction.
  Simulator(const Topology& topology, const RequestModel& model,
            SimConfig config);

  /// Run the configured number of cycles and gather metrics. Can be
  /// called repeatedly; each call continues the same random stream.
  SimResult run();

 private:
  SimResult run_reference();

  const Topology& topology_;
  const RequestModel& model_;
  SimConfig config_;
  Xoshiro256 rng_;
};

/// One-shot convenience wrapper.
SimResult simulate(const Topology& topology, const RequestModel& model,
                   const SimConfig& config);

}  // namespace mbus
