// Optional per-cycle event tracing for the simulator: a bounded ring
// buffer of grant/block events with CSV export, for debugging arbitration
// behaviour and for fine-grained post-processing the aggregate metrics
// cannot answer (e.g. per-module burstiness).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

namespace mbus {

enum class TraceEventKind {
  kGrant,    // module served over a bus; processor is the winner
  kBlocked,  // processor's request was not served this cycle
};

struct TraceEvent {
  std::int64_t cycle = 0;
  TraceEventKind kind = TraceEventKind::kGrant;
  int processor = -1;
  int module = -1;
  int bus = -1;  // -1 for blocked events
};

/// Fixed-capacity ring buffer of simulator events. When full, the oldest
/// events are overwritten; `dropped()` counts the overwritten ones.
class TraceBuffer {
 public:
  /// `capacity` > 0 events.
  explicit TraceBuffer(std::size_t capacity);

  void record(const TraceEvent& event);

  std::size_t size() const noexcept;
  std::size_t capacity() const noexcept { return buffer_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Events in chronological order (oldest retained first).
  std::vector<TraceEvent> snapshot() const;

  /// CSV export: header + one row per event.
  void write_csv(std::ostream& out) const;

  void clear() noexcept;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // valid entries
  std::uint64_t dropped_ = 0;
};

/// Short name of an event kind ("grant" / "blocked").
const char* to_string(TraceEventKind kind);

}  // namespace mbus
