#include "sim/bus_assign.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mbus {

namespace {

/// Pick `take` module ids from `requested` (ascending) cyclically starting
/// at the first id >= *pointer; advances *pointer one past the last pick.
/// This is the round-robin B-out-of-M grant of Section II-A.
void pick_round_robin(const std::vector<int>& requested, std::size_t take,
                      int modulus, int* pointer, std::vector<int>& out) {
  MBUS_ASSERT(take <= requested.size(), "cannot grant more than requested");
  const auto first = std::lower_bound(requested.begin(), requested.end(),
                                      *pointer);
  std::size_t idx = static_cast<std::size_t>(first - requested.begin());
  int last = *pointer;
  for (std::size_t granted = 0; granted < take; ++granted) {
    if (idx == requested.size()) idx = 0;  // wrap around the module space
    out.push_back(requested[idx]);
    last = requested[idx];
    ++idx;
  }
  *pointer = (last + 1) % modulus;
}

/// Ascending list of available buses within [first_bus, first_bus+count).
std::vector<int> available_in_range(const std::vector<bool>& unavailable,
                                    int first_bus, int count) {
  std::vector<int> out;
  for (int b = first_bus; b < first_bus + count; ++b) {
    if (!unavailable[static_cast<std::size_t>(b)]) out.push_back(b);
  }
  return out;
}

class FullAssigner final : public BusAssigner {
 public:
  FullAssigner(int num_memories, int num_buses)
      : num_memories_(num_memories),
        unavailable_(static_cast<std::size_t>(num_buses), false),
        num_buses_(num_buses) {}

  void set_bus_unavailable(std::vector<bool> bus_unavailable) override {
    MBUS_EXPECTS(bus_unavailable.size() == unavailable_.size(),
                 "bus mask size mismatch");
    unavailable_ = std::move(bus_unavailable);
  }

  void assign(const std::vector<int>& requested, Xoshiro256& /*rng*/,
              std::vector<BusGrant>& grants) override {
    grants.clear();
    const std::vector<int> buses =
        available_in_range(unavailable_, 0, num_buses_);
    const std::size_t capacity = buses.size();
    std::vector<int> picked;
    if (requested.size() <= capacity) {
      picked = requested;
    } else {
      pick_round_robin(requested, capacity, num_memories_, &pointer_,
                       picked);
    }
    for (std::size_t i = 0; i < picked.size(); ++i) {
      grants.push_back(BusGrant{picked[i], buses[i]});
    }
  }

 private:
  int num_memories_;
  std::vector<bool> unavailable_;
  int num_buses_;
  int pointer_ = 0;
};

class SingleAssigner final : public BusAssigner {
 public:
  SingleAssigner(const SingleTopology& topo, ArbitrationPolicy policy)
      : policy_(policy),
        bus_of_module_(static_cast<std::size_t>(topo.num_memories())),
        unavailable_(static_cast<std::size_t>(topo.num_buses()), false),
        candidates_(static_cast<std::size_t>(topo.num_buses())),
        rr_pointer_(static_cast<std::size_t>(topo.num_buses()), 0) {
    for (int m = 0; m < topo.num_memories(); ++m) {
      bus_of_module_[static_cast<std::size_t>(m)] = topo.bus_of_module(m);
    }
  }

  void set_bus_unavailable(std::vector<bool> bus_unavailable) override {
    MBUS_EXPECTS(bus_unavailable.size() == unavailable_.size(),
                 "bus mask size mismatch");
    unavailable_ = std::move(bus_unavailable);
  }

  void assign(const std::vector<int>& requested, Xoshiro256& rng,
              std::vector<BusGrant>& grants) override {
    grants.clear();
    for (auto& c : candidates_) c.clear();
    for (const int m : requested) {
      const int b = bus_of_module_[static_cast<std::size_t>(m)];
      if (!unavailable_[static_cast<std::size_t>(b)]) {
        candidates_[static_cast<std::size_t>(b)].push_back(m);
      }
    }
    for (std::size_t b = 0; b < candidates_.size(); ++b) {
      auto& c = candidates_[b];
      if (c.empty()) continue;
      int winner;
      if (policy_ == ArbitrationPolicy::kRandom) {
        winner = c[static_cast<std::size_t>(rng.below(c.size()))];
      } else {
        winner = c.front();
        for (const int m : c) {
          if (m >= rr_pointer_[b]) {
            winner = m;
            break;
          }
        }
        rr_pointer_[b] = winner + 1;
      }
      grants.push_back(BusGrant{winner, static_cast<int>(b)});
    }
  }

 private:
  ArbitrationPolicy policy_;
  std::vector<int> bus_of_module_;
  std::vector<bool> unavailable_;
  std::vector<std::vector<int>> candidates_;  // per bus
  std::vector<int> rr_pointer_;
};

class PartialGAssigner final : public BusAssigner {
 public:
  explicit PartialGAssigner(const PartialGTopology& topo)
      : groups_(topo.groups()),
        modules_per_group_(topo.modules_per_group()),
        buses_per_group_(topo.buses_per_group()),
        unavailable_(static_cast<std::size_t>(topo.num_buses()), false),
        pointer_(static_cast<std::size_t>(groups_), 0),
        group_requests_(static_cast<std::size_t>(groups_)) {}

  void set_bus_unavailable(std::vector<bool> bus_unavailable) override {
    MBUS_EXPECTS(bus_unavailable.size() == unavailable_.size(),
                 "bus mask size mismatch");
    unavailable_ = std::move(bus_unavailable);
  }

  void assign(const std::vector<int>& requested, Xoshiro256& /*rng*/,
              std::vector<BusGrant>& grants) override {
    grants.clear();
    for (auto& g : group_requests_) g.clear();
    for (const int m : requested) {
      group_requests_[static_cast<std::size_t>(m / modules_per_group_)]
          .push_back(m);
    }
    for (int g = 0; g < groups_; ++g) {
      const auto& reqs = group_requests_[static_cast<std::size_t>(g)];
      if (reqs.empty()) continue;
      const std::vector<int> buses = available_in_range(
          unavailable_, g * buses_per_group_, buses_per_group_);
      const std::size_t capacity = buses.size();
      std::vector<int> picked;
      if (reqs.size() <= capacity) {
        picked = reqs;
      } else {
        // Round-robin pointer is local to the group's module range; the
        // modulus below maps it back into [g·M/g, (g+1)·M/g).
        int pointer = pointer_[static_cast<std::size_t>(g)];
        pick_round_robin(reqs, capacity, (g + 1) * modules_per_group_,
                         &pointer, picked);
        if (pointer < g * modules_per_group_) {
          pointer = g * modules_per_group_;  // wrapped: restart at base
        }
        pointer_[static_cast<std::size_t>(g)] = pointer;
      }
      for (std::size_t i = 0; i < picked.size(); ++i) {
        grants.push_back(BusGrant{picked[i], buses[i]});
      }
    }
  }

 private:
  int groups_;
  int modules_per_group_;
  int buses_per_group_;
  std::vector<bool> unavailable_;
  std::vector<int> pointer_;
  std::vector<std::vector<int>> group_requests_;
};

class KClassAssigner final : public BusAssigner {
 public:
  KClassAssigner(const KClassTopology& topo, ArbitrationPolicy policy)
      : policy_(policy),
        num_buses_(topo.num_buses()),
        num_classes_(topo.num_classes()),
        class_of_module_(static_cast<std::size_t>(topo.num_memories())),
        top_bus_of_class_(static_cast<std::size_t>(num_classes_)),
        unavailable_(static_cast<std::size_t>(num_buses_), false),
        class_requests_(static_cast<std::size_t>(num_classes_)),
        class_pointer_(static_cast<std::size_t>(num_classes_), 0),
        candidates_(static_cast<std::size_t>(num_buses_)),
        bus_pointer_(static_cast<std::size_t>(num_buses_), 0) {
    for (int m = 0; m < topo.num_memories(); ++m) {
      class_of_module_[static_cast<std::size_t>(m)] =
          topo.class_of_module(m);
    }
    for (int j = 1; j <= num_classes_; ++j) {
      // 0-based index of the highest bus wired to class j.
      top_bus_of_class_[static_cast<std::size_t>(j - 1)] =
          topo.buses_of_class(j) - 1;
    }
    num_memories_ = topo.num_memories();
  }

  void set_bus_unavailable(std::vector<bool> bus_unavailable) override {
    MBUS_EXPECTS(bus_unavailable.size() == unavailable_.size(),
                 "bus mask size mismatch");
    unavailable_ = std::move(bus_unavailable);
  }

  void assign(const std::vector<int>& requested, Xoshiro256& rng,
              std::vector<BusGrant>& grants) override {
    grants.clear();
    for (auto& c : class_requests_) c.clear();
    for (auto& c : candidates_) c.clear();

    for (const int m : requested) {
      const int j = class_of_module_[static_cast<std::size_t>(m)];
      class_requests_[static_cast<std::size_t>(j - 1)].push_back(m);
    }

    // Step 1: each class assigns its requesting modules to its available
    // buses from the highest bus index downward.
    for (int j = 1; j <= num_classes_; ++j) {
      const auto& reqs = class_requests_[static_cast<std::size_t>(j - 1)];
      if (reqs.empty()) continue;
      std::vector<int> buses;
      for (int b = top_bus_of_class_[static_cast<std::size_t>(j - 1)];
           b >= 0; --b) {
        if (!unavailable_[static_cast<std::size_t>(b)]) buses.push_back(b);
      }
      const std::size_t take = std::min(buses.size(), reqs.size());
      if (take == 0) continue;
      // Which modules get picked when oversubscribed: round-robin over
      // the class's module ids (the paper leaves the choice unspecified;
      // any fair rule yields the same bus-request distribution).
      std::vector<int> picked;
      int pointer = class_pointer_[static_cast<std::size_t>(j - 1)];
      pick_round_robin(reqs, take, num_memories_, &pointer, picked);
      class_pointer_[static_cast<std::size_t>(j - 1)] = pointer;
      for (std::size_t t = 0; t < take; ++t) {
        candidates_[static_cast<std::size_t>(buses[t])].push_back(picked[t]);
      }
    }

    // Step 2: every bus grants one of its candidates.
    for (std::size_t b = 0; b < candidates_.size(); ++b) {
      auto& c = candidates_[b];
      if (c.empty()) continue;
      int winner;
      if (policy_ == ArbitrationPolicy::kRandom) {
        winner = c[static_cast<std::size_t>(rng.below(c.size()))];
      } else {
        std::sort(c.begin(), c.end());
        winner = c.front();
        for (const int m : c) {
          if (m >= bus_pointer_[b]) {
            winner = m;
            break;
          }
        }
        bus_pointer_[b] = winner + 1;
      }
      grants.push_back(BusGrant{winner, static_cast<int>(b)});
    }
    std::sort(grants.begin(), grants.end(),
              [](const BusGrant& a, const BusGrant& b) {
                return a.module < b.module;
              });
  }

 private:
  ArbitrationPolicy policy_;
  int num_buses_;
  int num_classes_;
  int num_memories_ = 0;
  std::vector<int> class_of_module_;  // 1-based class id per module
  std::vector<int> top_bus_of_class_;
  std::vector<bool> unavailable_;
  std::vector<std::vector<int>> class_requests_;
  std::vector<int> class_pointer_;
  std::vector<std::vector<int>> candidates_;  // per bus, one per class max
  std::vector<int> bus_pointer_;
};

}  // namespace

std::unique_ptr<BusAssigner> make_bus_assigner(const Topology& topology,
                                               ArbitrationPolicy policy) {
  switch (topology.scheme()) {
    case Scheme::kFull:
      return std::make_unique<FullAssigner>(topology.num_memories(),
                                            topology.num_buses());
    case Scheme::kSingle:
      return std::make_unique<SingleAssigner>(
          dynamic_cast<const SingleTopology&>(topology), policy);
    case Scheme::kPartialG:
      return std::make_unique<PartialGAssigner>(
          dynamic_cast<const PartialGTopology&>(topology));
    case Scheme::kKClasses:
      return std::make_unique<KClassAssigner>(
          dynamic_cast<const KClassTopology&>(topology), policy);
  }
  MBUS_ASSERT(false, "unknown scheme");
  return nullptr;
}

}  // namespace mbus
