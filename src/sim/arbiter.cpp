#include "sim/arbiter.hpp"

#include "util/error.hpp"

namespace mbus {

MemoryArbiter::MemoryArbiter(int num_modules, ArbitrationPolicy policy)
    : policy_(policy),
      priority_(static_cast<std::size_t>(num_modules), 0) {
  MBUS_EXPECTS(num_modules >= 1, "need at least one module");
}

int MemoryArbiter::select(int module, const std::vector<int>& requesters,
                          Xoshiro256& rng) {
  MBUS_EXPECTS(!requesters.empty(), "arbiter invoked without requesters");
  MBUS_EXPECTS(module >= 0 &&
                   module < static_cast<int>(priority_.size()),
               "module index out of range");
  if (policy_ == ArbitrationPolicy::kRandom) {
    return requesters[static_cast<std::size_t>(
        rng.below(requesters.size()))];
  }
  // Round-robin: requesters arrive in ascending processor order; take the
  // first at or after the pointer, wrapping around.
  const int pointer = priority_[static_cast<std::size_t>(module)];
  int winner = requesters.front();
  for (const int p : requesters) {
    if (p >= pointer) {
      winner = p;
      break;
    }
  }
  priority_[static_cast<std::size_t>(module)] = winner + 1;
  return winner;
}

}  // namespace mbus
