// Stage-one arbitration: one N-user/1-server arbiter per memory module
// (Lang et al.'s two-stage scheme, Section II-A). Each cycle, every module
// with outstanding requests selects exactly one winning processor.
//
// The paper's arbiter picks uniformly at random among requesters; we also
// provide a rotating-priority (round-robin) variant for the fairness
// ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mbus {

enum class ArbitrationPolicy { kRandom, kRoundRobin };

class MemoryArbiter {
 public:
  MemoryArbiter(int num_modules, ArbitrationPolicy policy);

  /// Pick the winning processor for `module` among `requesters` (non-empty).
  /// Random policy: uniform choice. Round-robin: the first requester at or
  /// after the module's rotating priority pointer; the pointer then moves
  /// one past the winner.
  int select(int module, const std::vector<int>& requesters,
             Xoshiro256& rng);

  ArbitrationPolicy policy() const noexcept { return policy_; }

 private:
  ArbitrationPolicy policy_;
  std::vector<int> priority_;  // per-module rotating pointer (processor id)
};

}  // namespace mbus
