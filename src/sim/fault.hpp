// Fault injection for the simulator: buses and memory modules.
//
// A FaultPlan is a static failed-component mask plus an optional timeline
// of fail/repair events; the engine applies events at the start of the
// cycle whose index matches. The static mask reproduces the degraded-mode
// analysis; the timeline supports transient-fault experiments and the
// stochastic fail/repair campaigns (sim/fault_process.hpp) beyond the
// paper.
//
// Bus faults take the bus out of stage-two arbitration; module faults
// block every request addressed to the module (the module neither joins
// stage-one arbitration nor occupies a bus) until it is repaired. A plan
// may carry bus faults only (num_modules() == 0, the pre-module API) or
// both kinds; the engine validates the plan's shape against the topology
// at Simulator construction.
#pragma once

#include <cstdint>
#include <vector>

namespace mbus {

/// Which component an event (or index) refers to.
enum class FaultKind { kBus, kModule };

struct FaultEvent {
  std::int64_t cycle = 0;  // applied at the start of this cycle
  int component = 0;       // bus or module index, per `kind`
  bool failed = true;  // true = component goes down, false = repaired
  FaultKind kind = FaultKind::kBus;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Static plan: the given buses are down for the whole run.
  static FaultPlan static_failures(int num_buses,
                                   const std::vector<int>& failed_buses);

  /// Static plan over both component kinds: the given buses and memory
  /// modules are down for the whole run.
  static FaultPlan static_failures(int num_buses,
                                   const std::vector<int>& failed_buses,
                                   int num_modules,
                                   const std::vector<int>& failed_modules);

  /// Timeline plan starting from all-healthy. Bus events only; module
  /// events require the module-aware overload below.
  static FaultPlan timeline(int num_buses, std::vector<FaultEvent> events);

  /// Timeline plan over both component kinds, starting from all-healthy.
  static FaultPlan timeline(int num_buses, int num_modules,
                            std::vector<FaultEvent> events);

  /// The bus mask in force at cycle 0.
  const std::vector<bool>& initial_mask() const noexcept { return initial_; }

  /// The module mask in force at cycle 0 (empty when the plan carries no
  /// module information).
  const std::vector<bool>& initial_module_mask() const noexcept {
    return initial_modules_;
  }

  /// Events sorted by cycle (stable).
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  bool empty() const noexcept {
    if (!events_.empty()) return false;
    for (const bool f : initial_) {
      if (f) return false;
    }
    for (const bool f : initial_modules_) {
      if (f) return false;
    }
    return true;
  }

  int num_buses() const noexcept { return static_cast<int>(initial_.size()); }

  /// 0 when the plan carries no module information (bus-only plans).
  int num_modules() const noexcept {
    return static_cast<int>(initial_modules_.size());
  }

 private:
  std::vector<bool> initial_;
  std::vector<bool> initial_modules_;
  std::vector<FaultEvent> events_;
};

}  // namespace mbus
