// Bus-fault injection for the simulator.
//
// A FaultPlan is a static failed-bus mask plus an optional timeline of
// fail/repair events; the engine applies events at the start of the cycle
// whose index matches. The static mask reproduces the degraded-mode
// analysis; the timeline supports transient-fault experiments beyond the
// paper.
#pragma once

#include <cstdint>
#include <vector>

namespace mbus {

struct FaultEvent {
  std::int64_t cycle = 0;  // applied at the start of this cycle
  int bus = 0;
  bool failed = true;  // true = bus goes down, false = bus repaired
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Static plan: the given buses are down for the whole run.
  static FaultPlan static_failures(int num_buses,
                                   const std::vector<int>& failed_buses);

  /// Timeline plan starting from all-healthy.
  static FaultPlan timeline(int num_buses, std::vector<FaultEvent> events);

  /// The mask in force at cycle 0.
  const std::vector<bool>& initial_mask() const noexcept { return initial_; }

  /// Events sorted by cycle (stable).
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  bool empty() const noexcept {
    if (!events_.empty()) return false;
    for (const bool f : initial_) {
      if (f) return false;
    }
    return true;
  }

  int num_buses() const noexcept { return static_cast<int>(initial_.size()); }

 private:
  std::vector<bool> initial_;
  std::vector<FaultEvent> events_;
};

}  // namespace mbus
