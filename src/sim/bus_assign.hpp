// Stage-two arbitration: assigning buses to the memory services selected
// by the per-module arbiters. One policy object per connection scheme:
//
//   * full       — a B-out-of-M arbiter; when more than B modules request,
//                  buses are granted round-robin over the module index
//                  space (Section II-A).
//   * single     — each bus independently grants one of its requesting
//                  modules.
//   * partial-g  — the full policy applied per group with B/g buses.
//   * k-classes  — the paper's two-step procedure (Section III-D): first
//                  each class C_j assigns up to |alive buses of C_j| of its
//                  requesting modules to its buses from the highest index
//                  down; then each bus picks one candidate among the
//                  classes contending for it.
//
// All policies honour an unavailable-bus mask (failed buses, and buses
// held by in-flight multi-cycle transfers): masked buses grant nothing,
// and the K-class step-1 assignment skips them (matching
// analysis/degraded). Each grant names both the module served and the
// bus carrying it, so the engine can model transfers that occupy a bus
// for several cycles.
#pragma once

#include <memory>
#include <vector>

#include "sim/arbiter.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace mbus {

/// One bus grant: `module` is served over `bus` this cycle.
struct BusGrant {
  int module = 0;
  int bus = 0;
};

class BusAssigner {
 public:
  virtual ~BusAssigner() = default;

  /// `requested` — module ids with one selected memory service each,
  /// strictly ascending. Fills `grants` (cleared first). Every granted
  /// module occupies exactly one distinct available bus wired to it.
  virtual void assign(const std::vector<int>& requested, Xoshiro256& rng,
                      std::vector<BusGrant>& grants) = 0;

  /// Update the unavailable-bus mask (size B): true = bus grants nothing
  /// this cycle (failed, or held by an in-flight transfer).
  virtual void set_bus_unavailable(std::vector<bool> bus_unavailable) = 0;
};

/// Build the assigner matching `topology`'s scheme. `policy` controls the
/// tie-breaking arbiter used where the scheme needs one (single-bus grant
/// choice and K-class step 2); the paper's default is random selection.
std::unique_ptr<BusAssigner> make_bus_assigner(const Topology& topology,
                                               ArbitrationPolicy policy);

}  // namespace mbus
