#include "sim/engine.hpp"

#include <algorithm>

#include "sim/bus_assign.hpp"
#include "sim/kernel.hpp"
#include "util/alias_sampler.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

std::string to_string(EngineKind kind) {
  return kind == EngineKind::kFast ? "fast" : "reference";
}

EngineKind engine_kind_from_string(const std::string& name) {
  if (name == "fast") return EngineKind::kFast;
  if (name == "reference" || name == "ref") return EngineKind::kReference;
  MBUS_EXPECTS(false, cat("unknown engine kind '", name,
                          "' (expected 'reference' or 'fast')"));
  return EngineKind::kReference;
}

Simulator::Simulator(const Topology& topology, const RequestModel& model,
                     SimConfig config)
    : topology_(topology), model_(model), config_(std::move(config)),
      rng_(config_.seed) {
  MBUS_EXPECTS(topology.num_processors() == model.num_processors(),
               cat("topology has ", topology.num_processors(),
                   " processors but the model has ",
                   model.num_processors()));
  MBUS_EXPECTS(topology.num_memories() == model.num_memories(),
               cat("topology has ", topology.num_memories(),
                   " modules but the model has ", model.num_memories()));
  MBUS_EXPECTS(config_.cycles > 0, "need at least one measured cycle");
  MBUS_EXPECTS(config_.warmup >= 0, "warmup must be >= 0");
  MBUS_EXPECTS(config_.batches >= 1, "need at least one batch");
  MBUS_EXPECTS(config_.batches <= config_.cycles,
               "more batches than measured cycles");
  MBUS_EXPECTS(config_.transfer_cycles >= 1,
               "transfers take at least one cycle");
  if (!config_.faults.empty()) {
    MBUS_EXPECTS(config_.faults.num_buses() == topology.num_buses(),
                 "fault plan sized for a different bus count");
  }
  if (config_.faults.num_modules() > 0) {
    MBUS_EXPECTS(config_.faults.num_modules() == topology.num_memories(),
                 "fault plan sized for a different module count");
  }
  model.validate();
}

SimResult Simulator::run() {
  if (config_.engine == EngineKind::kFast &&
      fast_kernel_supported(topology_, config_)) {
    return run_fast_kernel(topology_, model_, config_, rng_);
  }
  return run_reference();
}

SimResult Simulator::run_reference() {
  const int n = topology_.num_processors();
  const int m = topology_.num_memories();
  const int num_buses = topology_.num_buses();
  const double r = model_.request_rate();
  const std::int64_t transfer = config_.transfer_cycles;

  // Destination samplers, one per processor.
  std::vector<AliasSampler> samplers;
  samplers.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    samplers.emplace_back(model_.fraction_row(p));
  }

  MemoryArbiter memory_arbiter(m, config_.memory_arbitration);
  std::unique_ptr<BusAssigner> bus_assigner =
      make_bus_assigner(topology_, config_.bus_arbitration);

  std::vector<bool> bus_failed(static_cast<std::size_t>(num_buses), false);
  if (!config_.faults.empty()) bus_failed = config_.faults.initial_mask();
  std::vector<bool> module_failed(static_cast<std::size_t>(m), false);
  if (config_.faults.num_modules() > 0) {
    module_failed = config_.faults.initial_module_mask();
  }
  std::size_t next_event = 0;
  const auto& events = config_.faults.events();

  // Multi-cycle transfer occupancy (cycles remaining per bus / module).
  std::vector<std::int64_t> bus_remaining(
      static_cast<std::size_t>(num_buses), 0);
  std::vector<std::int64_t> module_remaining(static_cast<std::size_t>(m),
                                             0);
  std::vector<bool> bus_unavailable = bus_failed;
  bus_assigner->set_bus_unavailable(bus_unavailable);
  // The mask only changes on fault events or when transfers span cycles.
  const bool dynamic_mask = transfer > 1;

  // Per-cycle scratch, allocated once.
  std::vector<std::vector<int>> requesters(static_cast<std::size_t>(m));
  std::vector<int> requesting_modules;
  requesting_modules.reserve(static_cast<std::size_t>(m));
  std::vector<int> winner_of_module(static_cast<std::size_t>(m), -1);
  std::vector<BusGrant> grants;
  grants.reserve(static_cast<std::size_t>(num_buses));
  std::vector<int> pending(static_cast<std::size_t>(n), -1);  // resubmission
  std::vector<std::int64_t> issue_cycle(static_cast<std::size_t>(n), -1);

  // Accumulators.
  std::vector<std::int64_t> proc_granted(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> module_served(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> service_histogram;
  std::int64_t issued_total = 0;
  std::int64_t blocked_total = 0;
  std::int64_t resubmitted_total = 0;
  std::int64_t served_total = 0;
  std::int64_t latency_total = 0;
  std::int64_t latency_grants = 0;
  std::int64_t busy_bus_cycles = 0;

  RunningStats batch_stats;
  std::vector<double> batch_means;
  const std::int64_t batch_size =
      std::max<std::int64_t>(1, config_.cycles / config_.batches);
  std::int64_t batch_served = 0;
  std::int64_t batch_cycles = 0;
  std::vector<double> window_bandwidth;
  std::int64_t window_served = 0;
  std::int64_t window_cycles_seen = 0;

  const std::int64_t total_cycles = config_.warmup + config_.cycles;
  for (std::int64_t cycle = 0; cycle < total_cycles; ++cycle) {
    if (config_.cancel != nullptr && (cycle & 1023) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      throw Cancelled(cat("simulation cancelled at cycle ", cycle, " of ",
                          total_cycles));
    }
    bool mask_changed = false;

    // Fault timeline (timed relative to measured cycles; warmup excluded).
    while (next_event < events.size() &&
           events[next_event].cycle <= cycle - config_.warmup) {
      const FaultEvent& event = events[next_event];
      if (event.kind == FaultKind::kBus) {
        bus_failed[static_cast<std::size_t>(event.component)] = event.failed;
        mask_changed = true;
      } else {
        module_failed[static_cast<std::size_t>(event.component)] =
            event.failed;
      }
      ++next_event;
    }

    // Release finished transfers.
    if (dynamic_mask) {
      for (std::int64_t& rem : bus_remaining) {
        if (rem > 0) {
          --rem;
          mask_changed = true;
        }
      }
      for (std::int64_t& rem : module_remaining) {
        if (rem > 0) --rem;
      }
    }
    if (mask_changed || dynamic_mask) {
      for (int b = 0; b < num_buses; ++b) {
        bus_unavailable[static_cast<std::size_t>(b)] =
            bus_failed[static_cast<std::size_t>(b)] ||
            bus_remaining[static_cast<std::size_t>(b)] > 0;
      }
      bus_assigner->set_bus_unavailable(bus_unavailable);
    }

    // 1. Request generation.
    requesting_modules.clear();
    std::int64_t issued = 0;
    std::int64_t resubmitted = 0;
    std::int64_t busy_module_blocked = 0;
    for (int p = 0; p < n; ++p) {
      int dest = -1;
      if (config_.resubmit_blocked &&
          pending[static_cast<std::size_t>(p)] >= 0) {
        dest = pending[static_cast<std::size_t>(p)];
        ++resubmitted;
      } else if (rng_.bernoulli(r)) {
        dest = static_cast<int>(
            samplers[static_cast<std::size_t>(p)].sample(rng_));
        issue_cycle[static_cast<std::size_t>(p)] = cycle;
      }
      if (dest < 0) continue;
      ++issued;
      pending[static_cast<std::size_t>(p)] = dest;
      // A failed module or one still transferring rejects new requests
      // outright (memory interference, Section II-A). With resubmission
      // the processor retries every cycle until repair.
      if (module_failed[static_cast<std::size_t>(dest)] ||
          module_remaining[static_cast<std::size_t>(dest)] > 0) {
        ++busy_module_blocked;
        if (!config_.resubmit_blocked) {
          pending[static_cast<std::size_t>(p)] = -1;
        }
        continue;
      }
      auto& list = requesters[static_cast<std::size_t>(dest)];
      if (list.empty()) requesting_modules.push_back(dest);
      list.push_back(p);
    }
    std::sort(requesting_modules.begin(), requesting_modules.end());

    // 2. Stage-one (memory) arbitration.
    for (const int module : requesting_modules) {
      winner_of_module[static_cast<std::size_t>(module)] =
          memory_arbiter.select(
              module, requesters[static_cast<std::size_t>(module)], rng_);
    }

    // 3. Stage-two (bus) arbitration.
    bus_assigner->assign(requesting_modules, rng_, grants);

    // 4. Completion bookkeeping.
    const auto served_count = static_cast<std::int64_t>(grants.size());
    const bool measuring = cycle >= config_.warmup;
    for (const BusGrant& grant : grants) {
      const int winner =
          winner_of_module[static_cast<std::size_t>(grant.module)];
      pending[static_cast<std::size_t>(winner)] = -1;
      if (transfer > 1) {
        bus_remaining[static_cast<std::size_t>(grant.bus)] = transfer;
        module_remaining[static_cast<std::size_t>(grant.module)] = transfer;
      }
      if (measuring) {
        ++proc_granted[static_cast<std::size_t>(winner)];
        ++module_served[static_cast<std::size_t>(grant.module)];
        latency_total +=
            cycle - issue_cycle[static_cast<std::size_t>(winner)] + 1;
        ++latency_grants;
        if (config_.trace != nullptr) {
          config_.trace->record(TraceEvent{cycle - config_.warmup,
                                           TraceEventKind::kGrant, winner,
                                           grant.module, grant.bus});
        }
      }
    }
    if (config_.trace != nullptr && measuring) {
      // Blocked events: at this point only the winners of *served*
      // modules have had their pending slot cleared, so any requester
      // with a live pending entry was blocked this cycle.
      for (const int module : requesting_modules) {
        for (const int p : requesters[static_cast<std::size_t>(module)]) {
          if (pending[static_cast<std::size_t>(p)] >= 0) {
            config_.trace->record(TraceEvent{cycle - config_.warmup,
                                             TraceEventKind::kBlocked, p,
                                             module, -1});
          }
        }
      }
    }
    if (!config_.resubmit_blocked) {
      // Assumption 5: blocked requests vanish.
      for (const int module : requesting_modules) {
        for (const int p : requesters[static_cast<std::size_t>(module)]) {
          pending[static_cast<std::size_t>(p)] = -1;
        }
      }
    }
    for (const int module : requesting_modules) {
      requesters[static_cast<std::size_t>(module)].clear();
    }

    if (!measuring) continue;
    issued_total += issued;
    blocked_total += issued - served_count;
    resubmitted_total += resubmitted;
    served_total += served_count;
    // A bus is busy this cycle if it carried a fresh grant or an ongoing
    // transfer (bus_remaining was set to `transfer` at grant and counts
    // this cycle implicitly via the grant).
    std::int64_t carrying = served_count;
    if (dynamic_mask) {
      for (int b = 0; b < num_buses; ++b) {
        if (bus_remaining[static_cast<std::size_t>(b)] > 0 &&
            bus_unavailable[static_cast<std::size_t>(b)] &&
            !bus_failed[static_cast<std::size_t>(b)]) {
          ++carrying;
        }
      }
    }
    busy_bus_cycles += carrying;
    (void)busy_module_blocked;

    if (static_cast<std::size_t>(served_count) >= service_histogram.size()) {
      service_histogram.resize(static_cast<std::size_t>(served_count) + 1,
                               0);
    }
    ++service_histogram[static_cast<std::size_t>(served_count)];

    batch_served += served_count;
    if (++batch_cycles == batch_size) {
      const double batch_mean = static_cast<double>(batch_served) /
                                static_cast<double>(batch_cycles);
      batch_stats.add(batch_mean);
      batch_means.push_back(batch_mean);
      batch_served = 0;
      batch_cycles = 0;
    }
    if (config_.window_cycles > 0) {
      window_served += served_count;
      if (++window_cycles_seen == config_.window_cycles) {
        window_bandwidth.push_back(static_cast<double>(window_served) /
                                   static_cast<double>(window_cycles_seen));
        window_served = 0;
        window_cycles_seen = 0;
      }
    }
  }
  if (batch_cycles > 0) {
    const double batch_mean = static_cast<double>(batch_served) /
                              static_cast<double>(batch_cycles);
    batch_stats.add(batch_mean);
    batch_means.push_back(batch_mean);
  }
  if (config_.window_cycles > 0 && window_cycles_seen > 0) {
    window_bandwidth.push_back(static_cast<double>(window_served) /
                               static_cast<double>(window_cycles_seen));
  }

  SimResult result;
  result.seed = config_.seed;
  result.batch_means = std::move(batch_means);
  result.measured_cycles = config_.cycles;
  const auto cycles_d = static_cast<double>(config_.cycles);
  result.bandwidth = static_cast<double>(served_total) / cycles_d;
  result.bandwidth_ci = confidence_interval(batch_stats, 0.95);
  result.offered_load = static_cast<double>(issued_total) / cycles_d;
  result.blocked_fraction =
      issued_total == 0
          ? 0.0
          : static_cast<double>(blocked_total) /
                static_cast<double>(issued_total);
  result.bus_utilization =
      static_cast<double>(busy_bus_cycles) /
      (cycles_d * static_cast<double>(num_buses));
  result.mean_service_cycles =
      latency_grants == 0 ? 0.0
                          : static_cast<double>(latency_total) /
                                static_cast<double>(latency_grants);
  result.per_processor_acceptance.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    result.per_processor_acceptance.push_back(
        static_cast<double>(proc_granted[static_cast<std::size_t>(p)]) /
        cycles_d);
  }
  result.per_module_service.reserve(static_cast<std::size_t>(m));
  for (int module = 0; module < m; ++module) {
    result.per_module_service.push_back(
        static_cast<double>(module_served[static_cast<std::size_t>(module)]) /
        cycles_d);
  }
  result.service_count_distribution.reserve(service_histogram.size());
  for (const std::int64_t count : service_histogram) {
    result.service_count_distribution.push_back(
        static_cast<double>(count) / cycles_d);
  }
  result.window_bandwidth = std::move(window_bandwidth);
  record_run_metrics(/*fast_engine=*/false, total_cycles, issued_total,
                     served_total, blocked_total, resubmitted_total,
                     service_histogram);
  return result;
}

SimResult simulate(const Topology& topology, const RequestModel& model,
                   const SimConfig& config) {
  Simulator sim(topology, model, config);
  return sim.run();
}

}  // namespace mbus
