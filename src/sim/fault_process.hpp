// Stochastic fail/repair processes over buses and memory modules.
//
// Each component alternates healthy and failed states with geometrically
// distributed sojourn times in discrete cycles: a healthy component fails
// each cycle with probability 1/MTBF, a failed one is repaired with
// probability 1/MTTR. Every component draws from its own deterministic
// substream (SplitMix64-derived, as in sim/replicate.hpp), so a generated
// timeline is a pure function of (seed, spec, shape) — never of thread
// count or scheduling — and fault campaigns stay bit-identical at any
// parallelism.
//
// The generated FaultPlan feeds the simulator (delivered bandwidth under
// faults, recovery visible through SimConfig::window_cycles) and the
// analytic replay helpers below (connectivity availability and empirical
// time-to-disconnect, the Monte-Carlo counterpart of Table I's
// fault-tolerance degrees).
#pragma once

#include <cstdint>

#include "sim/fault.hpp"
#include "topology/topology.hpp"

namespace mbus {

/// Geometric fail/repair parameters, in cycles. An MTBF of 0 disables
/// faults for that component kind; positive values must be >= 1 (so the
/// per-cycle probabilities 1/MTBF and 1/MTTR stay in (0, 1]).
struct FaultProcessSpec {
  double bus_mtbf = 0.0;    // mean cycles from repair to next failure
  double bus_mttr = 1.0;    // mean cycles from failure to repair
  double module_mtbf = 0.0;
  double module_mttr = 1.0;
};

/// Generate the fail/repair timeline of `num_buses` buses and
/// `num_modules` modules over `horizon` cycles. All components start
/// healthy. Events are sorted by cycle; within a cycle, buses precede
/// modules and components stay in index order. When `spec.module_mtbf`
/// is 0 (or `num_modules` is 0) the plan carries no module information,
/// i.e. it stays compatible with module-less consumers.
FaultPlan generate_fault_timeline(const FaultProcessSpec& spec,
                                  int num_buses, int num_modules,
                                  std::int64_t horizon, std::uint64_t seed);

/// First cycle at which some memory module loses its last surviving bus
/// under the plan's *bus* timeline (module faults are down time, not
/// disconnection, and are ignored here). Returns -1 when the system stays
/// fully connected for all of [0, horizon). With a static all-healthy plan
/// this is always -1; with Table I's degree d, at least d+1 simultaneous
/// bus failures are required before this can trigger.
std::int64_t first_disconnect_cycle(const Topology& topology,
                                    const FaultPlan& plan,
                                    std::int64_t horizon);

/// Fraction of cycles in [0, horizon) during which every module was
/// reachable over surviving buses (bus timeline only).
double connectivity_fraction(const Topology& topology, const FaultPlan& plan,
                             std::int64_t horizon);

}  // namespace mbus
