#include "sim/metrics.hpp"

#include <algorithm>

namespace mbus {

double jain_fairness(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : rates) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // everybody got zero — equally unfair
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

double relative_spread(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  double sum = 0.0;
  for (const double x : rates) sum += x;
  const double mean = sum / static_cast<double>(rates.size());
  if (mean == 0.0) return 0.0;
  return (*hi - *lo) / mean;
}

}  // namespace mbus
