#include "sim/metrics.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/metrics.hpp"

namespace mbus {

void record_run_metrics(bool fast_engine, std::int64_t cycles,
                        std::int64_t issued, std::int64_t granted,
                        std::int64_t blocked, std::int64_t resubmitted,
                        const std::vector<std::int64_t>& service_histogram) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sim.runs").increment();
  reg.counter(fast_engine ? "sim.runs.fast" : "sim.runs.reference")
      .increment();
  reg.counter("sim.cycles").add(cycles);
  reg.counter("sim.requests.issued").add(issued);
  reg.counter("sim.requests.granted").add(granted);
  reg.counter("sim.requests.blocked").add(blocked);
  reg.counter("sim.requests.resubmitted").add(resubmitted);
  obs::Histogram& services =
      reg.histogram("sim.services_per_cycle", obs::per_cycle_count_bounds());
  for (std::size_t i = 0; i < service_histogram.size(); ++i) {
    services.observe_many(static_cast<std::int64_t>(i), service_histogram[i]);
  }
}

double jain_fairness(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : rates) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // everybody got zero — equally unfair
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

double relative_spread(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  double sum = 0.0;
  for (const double x : rates) sum += x;
  const double mean = sum / static_cast<double>(rates.size());
  if (mean == 0.0) return 0.0;
  return (*hi - *lo) / mean;
}

}  // namespace mbus
