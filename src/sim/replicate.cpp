#include "sim/replicate.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mbus {

namespace {

/// FNV-1a of the tag, so schemes with different names (or parameters
/// embedded in the name) get distinct streams.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// One SplitMix64 scrambling step: absorb `value` into `state`.
std::uint64_t absorb(std::uint64_t state, std::uint64_t value) noexcept {
  return SplitMix64(state ^ value).next();
}

}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::string_view tag, int buses,
                                 int replication) {
  std::uint64_t state = SplitMix64(base_seed).next();
  state = absorb(state, fnv1a(tag));
  state = absorb(state, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(buses)));
  state = absorb(state, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(replication)));
  return state;
}

SimResult merge_replications(std::vector<SimResult> results) {
  MBUS_EXPECTS(!results.empty(), "merge needs at least one replication");
  if (results.size() == 1) return std::move(results.front());

  // Canonical order: by seed, so the merge is a function of the result
  // *set*, not of the order replications completed in.
  std::sort(results.begin(), results.end(),
            [](const SimResult& a, const SimResult& b) {
              return a.seed < b.seed;
            });

  SimResult out;
  out.seed = results.front().seed;

  out.replications = 0;
  double total_cycles = 0.0;
  for (const SimResult& r : results) {
    out.replications += r.replications;
    out.measured_cycles += r.measured_cycles;
    total_cycles += static_cast<double>(r.measured_cycles);
  }
  MBUS_EXPECTS(total_cycles > 0.0, "replications measured no cycles");

  std::size_t procs = 0;
  std::size_t modules = 0;
  std::size_t histogram = 0;
  for (const SimResult& r : results) {
    procs = std::max(procs, r.per_processor_acceptance.size());
    modules = std::max(modules, r.per_module_service.size());
    histogram = std::max(histogram, r.service_count_distribution.size());
  }
  out.per_processor_acceptance.assign(procs, 0.0);
  out.per_module_service.assign(modules, 0.0);
  out.service_count_distribution.assign(histogram, 0.0);

  double issued = 0.0;
  double blocked = 0.0;
  double grants = 0.0;
  double service_cycles = 0.0;
  RunningStats pooled_batches;
  for (const SimResult& r : results) {
    const double cycles = static_cast<double>(r.measured_cycles);
    const double weight = cycles / total_cycles;
    out.bandwidth += r.bandwidth * weight;
    out.offered_load += r.offered_load * weight;
    out.bus_utilization += r.bus_utilization * weight;
    const double r_issued = r.offered_load * cycles;
    issued += r_issued;
    blocked += r.blocked_fraction * r_issued;
    const double r_grants = r.bandwidth * cycles;
    grants += r_grants;
    service_cycles += r.mean_service_cycles * r_grants;
    for (std::size_t i = 0; i < r.per_processor_acceptance.size(); ++i) {
      out.per_processor_acceptance[i] +=
          r.per_processor_acceptance[i] * weight;
    }
    for (std::size_t i = 0; i < r.per_module_service.size(); ++i) {
      out.per_module_service[i] += r.per_module_service[i] * weight;
    }
    for (std::size_t i = 0; i < r.service_count_distribution.size(); ++i) {
      out.service_count_distribution[i] +=
          r.service_count_distribution[i] * weight;
    }
    for (const double mean : r.batch_means) {
      pooled_batches.add(mean);
      out.batch_means.push_back(mean);
    }
    out.window_bandwidth.insert(out.window_bandwidth.end(),
                                r.window_bandwidth.begin(),
                                r.window_bandwidth.end());
  }
  out.blocked_fraction = issued > 0.0 ? blocked / issued : 0.0;
  out.mean_service_cycles = grants > 0.0 ? service_cycles / grants : 0.0;
  out.bandwidth_ci = confidence_interval(pooled_batches, 0.95);
  return out;
}

SimResult run_replications(const Topology& topology,
                           const RequestModel& model, const SimConfig& base,
                           int replications, std::string_view tag,
                           int threads) {
  MBUS_EXPECTS(replications >= 1, "need at least one replication");
  MBUS_EXPECTS(base.trace == nullptr || replications == 1,
               "event tracing is limited to a single replication (a shared "
               "trace buffer would interleave nondeterministically)");
  std::vector<SimResult> results(static_cast<std::size_t>(replications));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(replications));
  for (int rep = 0; rep < replications; ++rep) {
    tasks.push_back([&topology, &model, &base, &results, tag, rep] {
      SimConfig config = base;
      config.seed = derive_stream_seed(base.seed, tag,
                                       topology.num_buses(), rep);
      results[static_cast<std::size_t>(rep)] =
          simulate(topology, model, config);
    });
  }
  run_parallel(std::move(tasks), threads);
  return merge_replications(std::move(results));
}

}  // namespace mbus
