// Structure-of-arrays bitmask fast path for the cycle-level simulator.
//
// The reference engine (sim/engine.cpp) resolves every cycle with scalar
// loops over vectors of ints and per-cycle heap churn (candidate lists,
// available-bus vectors, sorts). This kernel keeps the identical
// semantics — the same requests, the same arbitration winners, the same
// metrics — but represents all per-cycle state as packed uint64_t
// bitmasks:
//
//   * requesters of a module, requesting modules, failed/busy buses and
//     modules are single machine words;
//   * priority and round-robin arbitration become mask/ctz operations
//     (first-set-bit at-or-after a pointer, k-th set bit);
//   * FaultPlan masks fold in as AND-masks over bus/module availability;
//   * destination sampling flattens the per-processor alias tables into
//     contiguous arrays while consuming the shared RNG stream in exactly
//     the reference order.
//
// Bit-identity contract: for any configuration where
// fast_kernel_supported() returns true, run_fast_kernel() produces a
// SimResult bit-identical to Simulator::run() with EngineKind::kReference
// and the same seed (enforced by tests/test_kernel_parity.cpp). The
// guarantee holds because the kernel performs the exact same sequence of
// RNG draws (bernoulli, alias-table column + acceptance, arbitration
// tie-breaks) and the exact same floating-point accumulation arithmetic
// as the reference loop; only the data layout differs.
//
// Configurations outside the support envelope (more than 64 processors,
// modules, or buses; an attached TraceBuffer; very long transfers) fall
// back to the reference engine inside Simulator::run().
#pragma once

#include "sim/engine.hpp"

namespace mbus {

/// True when the bitmask kernel can run this exact configuration with
/// bit-identical results: N, M, B all fit a 64-bit mask, no event trace
/// is attached, and the transfer-release ring stays a sane size.
bool fast_kernel_supported(const Topology& topology,
                           const SimConfig& config) noexcept;

/// Run the fast kernel. `rng` is the simulator's stream (continued across
/// repeated run() calls, exactly like the reference loop). Preconditions
/// are those of Simulator plus fast_kernel_supported().
SimResult run_fast_kernel(const Topology& topology, const RequestModel& model,
                          const SimConfig& config, Xoshiro256& rng);

}  // namespace mbus
