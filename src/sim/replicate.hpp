// Independent simulation replications with deterministic seed streams.
//
// Every (evaluation point, replication index) pair derives its own seed
// from a SplitMix64 hash of (base seed, point tag, bus count, replication
// index). The derivation is a pure function of those inputs — never of
// thread count, scheduling order, or wall-clock — so a parallel run on any
// number of threads is bit-identical to the serial one, and re-running a
// single replication in isolation reproduces exactly its slice of the
// pooled estimate.
//
// Merging is likewise order-canonical: merge_replications sorts its inputs
// by seed before pooling, so the merged SimResult does not depend on the
// order replications happened to finish (or be handed in).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace mbus {

/// The seed of replication `replication` of the point identified by
/// (`tag`, `buses`) under `base_seed`. Deterministic and portable;
/// distinct inputs map to distinct seeds with overwhelming probability
/// (the determinism test suite checks 10k-pair collision-freedom).
std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::string_view tag, int buses,
                                 int replication);

/// Pool independent replication results into one estimate: cycle-weighted
/// means for the rate metrics, concatenated batch means for the 95%
/// confidence interval, elementwise pooling for the per-entity vectors.
/// Input order is irrelevant (results are sorted by seed internally).
/// A single result is returned unchanged; empty input is an error.
SimResult merge_replications(std::vector<SimResult> results);

/// Run `replications` independent simulators of (`topology`, `model`),
/// each configured as `base` but with its seed derived from
/// (base.seed, tag, topology bus count, replication index), on `threads`
/// workers (ParallelOptions semantics: 1 = serial inline, 0 = hardware),
/// and merge the results. Bit-identical for any `threads`.
SimResult run_replications(const Topology& topology,
                           const RequestModel& model, const SimConfig& base,
                           int replications, std::string_view tag,
                           int threads);

}  // namespace mbus
