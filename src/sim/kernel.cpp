#include "sim/kernel.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/alias_sampler.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus {

namespace {

using u64 = std::uint64_t;

inline int ctz(u64 x) noexcept { return std::countr_zero(x); }
inline int popcount(u64 x) noexcept { return std::popcount(x); }

/// Bits of `mask` at positions >= k. `k` may exceed 63 (round-robin
/// pointers run up to one past the highest component id).
inline u64 bits_ge(u64 mask, int k) noexcept {
  return k >= 64 ? 0ULL : (mask >> k) << k;
}

/// Position of the (k+1)-th lowest set bit; `mask` must have > k set bits.
inline int kth_set_bit(u64 mask, u64 k) noexcept {
  while (k-- > 0) mask &= mask - 1;
  return ctz(mask);
}

/// All-ones over bit positions [0, count), count <= 64.
inline u64 low_mask(int count) noexcept {
  return count >= 64 ? ~0ULL : (1ULL << count) - 1;
}

}  // namespace

bool fast_kernel_supported(const Topology& topology,
                           const SimConfig& config) noexcept {
  return topology.num_processors() <= 64 && topology.num_memories() <= 64 &&
         topology.num_buses() <= 64 && config.trace == nullptr &&
         config.transfer_cycles <= 4096;
}

SimResult run_fast_kernel(const Topology& topology, const RequestModel& model,
                          const SimConfig& config, Xoshiro256& rng) {
  MBUS_ASSERT(fast_kernel_supported(topology, config),
              "fast kernel invoked on an unsupported configuration");
  const int n = topology.num_processors();
  const int m = topology.num_memories();
  const int num_buses = topology.num_buses();
  const double r = model.request_rate();
  const std::int64_t transfer = config.transfer_cycles;
  const bool dynamic_mask = transfer > 1;
  const bool resubmit = config.resubmit_blocked;
  const Scheme scheme = topology.scheme();

  // Destination sampling: the per-processor alias tables flattened into
  // contiguous rows; draws below replicate AliasSampler::sample exactly.
  std::vector<double> accept(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(m));
  std::vector<std::uint32_t> alias(accept.size());
  for (int p = 0; p < n; ++p) {
    const AliasSampler sampler(model.fraction_row(p));
    const auto base = static_cast<std::ptrdiff_t>(p) * m;
    std::copy(sampler.acceptance().begin(), sampler.acceptance().end(),
              accept.begin() + base);
    std::copy(sampler.aliases().begin(), sampler.aliases().end(),
              alias.begin() + base);
  }

  // Scheme wiring, flattened to masks.
  std::vector<int> bus_of_module;                // single
  int groups = 0;                                // partial-g
  int mpg = 0;
  std::vector<u64> group_modules;
  std::vector<u64> group_buses;
  int num_classes = 0;                           // k-classes
  std::vector<u64> class_modules;
  std::vector<int> top_bus_of_class;
  switch (scheme) {
    case Scheme::kFull:
      break;
    case Scheme::kSingle: {
      const auto& topo = dynamic_cast<const SingleTopology&>(topology);
      bus_of_module.resize(static_cast<std::size_t>(m));
      for (int mod = 0; mod < m; ++mod) {
        bus_of_module[static_cast<std::size_t>(mod)] =
            topo.bus_of_module(mod);
      }
      break;
    }
    case Scheme::kPartialG: {
      const auto& topo = dynamic_cast<const PartialGTopology&>(topology);
      groups = topo.groups();
      mpg = topo.modules_per_group();
      const int bpg = topo.buses_per_group();
      group_modules.resize(static_cast<std::size_t>(groups));
      group_buses.resize(static_cast<std::size_t>(groups));
      for (int g = 0; g < groups; ++g) {
        group_modules[static_cast<std::size_t>(g)] = low_mask(mpg)
                                                     << (g * mpg);
        group_buses[static_cast<std::size_t>(g)] = low_mask(bpg) << (g * bpg);
      }
      break;
    }
    case Scheme::kKClasses: {
      const auto& topo = dynamic_cast<const KClassTopology&>(topology);
      num_classes = topo.num_classes();
      class_modules.assign(static_cast<std::size_t>(num_classes), 0);
      top_bus_of_class.resize(static_cast<std::size_t>(num_classes));
      for (int mod = 0; mod < m; ++mod) {
        class_modules[static_cast<std::size_t>(topo.class_of_module(mod) -
                                               1)] |= 1ULL << mod;
      }
      for (int j = 1; j <= num_classes; ++j) {
        top_bus_of_class[static_cast<std::size_t>(j - 1)] =
            topo.buses_of_class(j) - 1;
      }
      break;
    }
  }

  // Fault state as AND-able masks.
  u64 bus_failed = 0;
  u64 module_failed = 0;
  if (!config.faults.empty()) {
    const std::vector<bool>& init = config.faults.initial_mask();
    for (int b = 0; b < num_buses; ++b) {
      if (init[static_cast<std::size_t>(b)]) bus_failed |= 1ULL << b;
    }
  }
  if (config.faults.num_modules() > 0) {
    const std::vector<bool>& init = config.faults.initial_module_mask();
    for (int mod = 0; mod < m; ++mod) {
      if (init[static_cast<std::size_t>(mod)]) module_failed |= 1ULL << mod;
    }
  }
  std::size_t next_event = 0;
  const auto& events = config.faults.events();

  // Multi-cycle transfer occupancy: a grant in cycle c occupies its bus
  // and module through cycle c+T-1; the release ring clears the busy bits
  // at the start of cycle c+T (slot (c+T) mod T == c mod T).
  u64 bus_busy = 0;
  u64 module_busy = 0;
  std::vector<u64> bus_release;
  std::vector<u64> module_release;
  if (dynamic_mask) {
    bus_release.assign(static_cast<std::size_t>(transfer), 0);
    module_release.assign(static_cast<std::size_t>(transfer), 0);
  }

  // Arbitration pointers (same initial values as the reference policies).
  int full_pointer = 0;
  std::vector<int> mem_rr(static_cast<std::size_t>(m), 0);
  std::vector<int> single_rr(static_cast<std::size_t>(num_buses), 0);
  std::vector<int> pg_pointer(static_cast<std::size_t>(groups), 0);
  std::vector<int> class_pointer(static_cast<std::size_t>(num_classes), 0);
  std::vector<int> kbus_pointer(static_cast<std::size_t>(num_buses), 0);

  // Per-cycle scratch.
  std::vector<u64> req_of_module(static_cast<std::size_t>(m), 0);
  std::vector<int> winner_of_module(static_cast<std::size_t>(m), 0);
  std::vector<u64> bus_cand(static_cast<std::size_t>(num_buses), 0);
  std::vector<int> kclass_cand(
      static_cast<std::size_t>(num_buses) *
      static_cast<std::size_t>(std::max(num_classes, 1)));
  std::vector<int> kclass_cand_count(static_cast<std::size_t>(num_buses), 0);
  std::vector<std::int64_t> issue_cycle(static_cast<std::size_t>(n), -1);
  std::vector<int> pending_dest(static_cast<std::size_t>(n), -1);
  u64 pending = 0;  // resubmission
  int grant_module[64];
  int grant_bus[64];

  // Accumulators (identical arithmetic to the reference loop).
  std::vector<std::int64_t> proc_granted(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> module_served(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> service_histogram;
  std::int64_t issued_total = 0;
  std::int64_t blocked_total = 0;
  std::int64_t resubmitted_total = 0;
  std::int64_t served_total = 0;
  std::int64_t latency_total = 0;
  std::int64_t latency_grants = 0;
  std::int64_t busy_bus_cycles = 0;

  RunningStats batch_stats;
  std::vector<double> batch_means;
  const std::int64_t batch_size =
      std::max<std::int64_t>(1, config.cycles / config.batches);
  std::int64_t batch_served = 0;
  std::int64_t batch_cycles = 0;
  std::vector<double> window_bandwidth;
  std::int64_t window_served = 0;
  std::int64_t window_cycles_seen = 0;

  const std::int64_t total_cycles = config.warmup + config.cycles;
  for (std::int64_t cycle = 0; cycle < total_cycles; ++cycle) {
    if (config.cancel != nullptr && (cycle & 1023) == 0 &&
        config.cancel->load(std::memory_order_relaxed)) {
      throw Cancelled(cat("simulation cancelled at cycle ", cycle, " of ",
                          total_cycles));
    }
    // Fault timeline (timed relative to measured cycles; warmup excluded).
    while (next_event < events.size() &&
           events[next_event].cycle <= cycle - config.warmup) {
      const FaultEvent& event = events[next_event];
      const u64 bit = 1ULL << event.component;
      if (event.kind == FaultKind::kBus) {
        bus_failed = event.failed ? bus_failed | bit : bus_failed & ~bit;
      } else {
        module_failed =
            event.failed ? module_failed | bit : module_failed & ~bit;
      }
      ++next_event;
    }

    // Release finished transfers.
    u64 busy_pre = 0;
    if (dynamic_mask) {
      const auto slot = static_cast<std::size_t>(cycle % transfer);
      bus_busy &= ~bus_release[slot];
      module_busy &= ~module_release[slot];
      bus_release[slot] = 0;
      module_release[slot] = 0;
      busy_pre = bus_busy;
    }
    const u64 bus_unavail = bus_failed | bus_busy;
    const u64 blocked_modules = module_failed | module_busy;

    // 1. Request generation — the reference draw sequence verbatim.
    // bernoulli(p >= 1) early-outs without consuming a draw, so at
    // saturation the call is skipped outright (identical RNG state).
    const bool always_request = r >= 1.0;
    u64 requesting = 0;
    std::int64_t issued = 0;
    std::int64_t resubmitted = 0;
    for (int p = 0; p < n; ++p) {
      const u64 pbit = 1ULL << p;
      int dest;
      if (resubmit && (pending & pbit) != 0) {
        dest = pending_dest[static_cast<std::size_t>(p)];
        ++resubmitted;
      } else if (always_request || rng.bernoulli(r)) {
        const auto col = static_cast<std::size_t>(
            rng.below(static_cast<u64>(m)));
        const std::size_t cell = static_cast<std::size_t>(p) *
                                     static_cast<std::size_t>(m) +
                                 col;
        dest = rng.uniform01() < accept[cell]
                   ? static_cast<int>(col)
                   : static_cast<int>(alias[cell]);
        issue_cycle[static_cast<std::size_t>(p)] = cycle;
      } else {
        continue;
      }
      ++issued;
      if (resubmit) {
        pending |= pbit;
        pending_dest[static_cast<std::size_t>(p)] = dest;
      }
      const u64 dbit = 1ULL << dest;
      // Failed or still-transferring module: blocked outright; with
      // resubmission the processor retries every cycle until repair.
      if ((blocked_modules & dbit) != 0) continue;
      req_of_module[static_cast<std::size_t>(dest)] |= pbit;
      requesting |= dbit;
    }

    // 2. Stage-one (memory) arbitration, ascending module order.
    // below(1) consumes nothing, so a lone requester needs no RNG call;
    // the reference pays that call's overhead, we branch on the mask.
    const bool mem_random =
        config.memory_arbitration == ArbitrationPolicy::kRandom;
    for (u64 rm = requesting; rm != 0; rm &= rm - 1) {
      const int mod = ctz(rm);
      const u64 requesters = req_of_module[static_cast<std::size_t>(mod)];
      req_of_module[static_cast<std::size_t>(mod)] = 0;
      int winner;
      if (mem_random) {
        winner =
            (requesters & (requesters - 1)) == 0
                ? ctz(requesters)
                : kth_set_bit(requesters, rng.below(static_cast<u64>(
                                              popcount(requesters))));
      } else {
        const u64 ge =
            bits_ge(requesters, mem_rr[static_cast<std::size_t>(mod)]);
        winner = ge != 0 ? ctz(ge) : ctz(requesters);
        mem_rr[static_cast<std::size_t>(mod)] = winner + 1;
      }
      winner_of_module[static_cast<std::size_t>(mod)] = winner;
    }

    // 3. Stage-two (bus) assignment.
    int served = 0;
    switch (scheme) {
      case Scheme::kFull: {
        u64 bm = low_mask(num_buses) & ~bus_unavail;
        const int capacity = popcount(bm);
        const int count = popcount(requesting);
        if (count <= capacity) {
          for (u64 rm = requesting; rm != 0; rm &= rm - 1) {
            grant_module[served] = ctz(rm);
            grant_bus[served] = ctz(bm);
            bm &= bm - 1;
            ++served;
          }
        } else {
          // Round-robin B-out-of-M: cyclically from the pointer; the
          // pointer advances one past the last pick (or by one when no
          // bus was available, matching pick_round_robin's take == 0).
          int last = full_pointer;
          u64 cur = bits_ge(requesting, full_pointer);
          u64 wrapped = requesting ^ cur;
          while (served < capacity) {
            if (cur == 0) {
              cur = wrapped;
              wrapped = 0;
            }
            const int mod = ctz(cur);
            cur &= cur - 1;
            grant_module[served] = mod;
            grant_bus[served] = ctz(bm);
            bm &= bm - 1;
            last = mod;
            ++served;
          }
          full_pointer = (last + 1) % m;
        }
        break;
      }
      case Scheme::kSingle: {
        u64 used = 0;
        for (u64 rm = requesting; rm != 0; rm &= rm - 1) {
          const int mod = ctz(rm);
          const int b = bus_of_module[static_cast<std::size_t>(mod)];
          if ((bus_unavail >> b & 1ULL) == 0) {
            bus_cand[static_cast<std::size_t>(b)] |= 1ULL << mod;
            used |= 1ULL << b;
          }
        }
        for (u64 um = used; um != 0; um &= um - 1) {
          const int b = ctz(um);
          const u64 cand = bus_cand[static_cast<std::size_t>(b)];
          bus_cand[static_cast<std::size_t>(b)] = 0;
          int winner;
          if (config.bus_arbitration == ArbitrationPolicy::kRandom) {
            winner = (cand & (cand - 1)) == 0
                         ? ctz(cand)
                         : kth_set_bit(cand, rng.below(static_cast<u64>(
                                                 popcount(cand))));
          } else {
            const u64 ge =
                bits_ge(cand, single_rr[static_cast<std::size_t>(b)]);
            winner = ge != 0 ? ctz(ge) : ctz(cand);
            single_rr[static_cast<std::size_t>(b)] = winner + 1;
          }
          grant_module[served] = winner;
          grant_bus[served] = b;
          ++served;
        }
        break;
      }
      case Scheme::kPartialG: {
        for (int g = 0; g < groups; ++g) {
          const u64 greq =
              requesting & group_modules[static_cast<std::size_t>(g)];
          if (greq == 0) continue;
          u64 bm = group_buses[static_cast<std::size_t>(g)] & ~bus_unavail;
          const int capacity = popcount(bm);
          const int count = popcount(greq);
          if (count <= capacity) {
            for (u64 rm = greq; rm != 0; rm &= rm - 1) {
              grant_module[served] = ctz(rm);
              grant_bus[served] = ctz(bm);
              bm &= bm - 1;
              ++served;
            }
          } else {
            int pointer = pg_pointer[static_cast<std::size_t>(g)];
            int last = pointer;
            u64 cur = bits_ge(greq, pointer);
            u64 wrapped = greq ^ cur;
            for (int take = capacity; take > 0; --take) {
              if (cur == 0) {
                cur = wrapped;
                wrapped = 0;
              }
              const int mod = ctz(cur);
              cur &= cur - 1;
              grant_module[served] = mod;
              grant_bus[served] = ctz(bm);
              bm &= bm - 1;
              last = mod;
              ++served;
            }
            // Pointer lives in the group's module range; a wrap past the
            // top restarts at the group base.
            pointer = (last + 1) % ((g + 1) * mpg);
            if (pointer < g * mpg) pointer = g * mpg;
            pg_pointer[static_cast<std::size_t>(g)] = pointer;
          }
        }
        break;
      }
      case Scheme::kKClasses: {
        // Step 1: each class assigns its requesting modules (round-robin
        // over module ids) to its available buses, highest index first.
        u64 used = 0;
        for (int j = 0; j < num_classes; ++j) {
          const u64 creq =
              requesting & class_modules[static_cast<std::size_t>(j)];
          if (creq == 0) continue;
          u64 bm = low_mask(top_bus_of_class[static_cast<std::size_t>(j)] +
                            1) &
                   ~bus_unavail;
          int take = std::min(popcount(bm), popcount(creq));
          if (take == 0) continue;
          int pointer = class_pointer[static_cast<std::size_t>(j)];
          int last = pointer;
          u64 cur = bits_ge(creq, pointer);
          u64 wrapped = creq ^ cur;
          while (take-- > 0) {
            if (cur == 0) {
              cur = wrapped;
              wrapped = 0;
            }
            const int mod = ctz(cur);
            cur &= cur - 1;
            const int b = 63 - std::countl_zero(bm);
            bm &= ~(1ULL << b);
            kclass_cand[static_cast<std::size_t>(b) *
                            static_cast<std::size_t>(num_classes) +
                        static_cast<std::size_t>(
                            kclass_cand_count[static_cast<std::size_t>(b)])] =
                mod;
            ++kclass_cand_count[static_cast<std::size_t>(b)];
            used |= 1ULL << b;
            last = mod;
          }
          class_pointer[static_cast<std::size_t>(j)] = (last + 1) % m;
        }
        // Step 2: every bus grants one of its candidates (at most one per
        // class, pushed in class order — the order the random policy
        // indexes into).
        for (u64 um = used; um != 0; um &= um - 1) {
          const int b = ctz(um);
          int* cand = kclass_cand.data() +
                      static_cast<std::size_t>(b) *
                          static_cast<std::size_t>(num_classes);
          const int count = kclass_cand_count[static_cast<std::size_t>(b)];
          kclass_cand_count[static_cast<std::size_t>(b)] = 0;
          int winner;
          if (config.bus_arbitration == ArbitrationPolicy::kRandom) {
            winner =
                count == 1 ? cand[0] : cand[rng.below(static_cast<u64>(count))];
          } else {
            std::sort(cand, cand + count);
            winner = cand[0];
            for (int i = 0; i < count; ++i) {
              if (cand[i] >= kbus_pointer[static_cast<std::size_t>(b)]) {
                winner = cand[i];
                break;
              }
            }
            kbus_pointer[static_cast<std::size_t>(b)] = winner + 1;
          }
          grant_module[served] = winner;
          grant_bus[served] = b;
          ++served;
        }
        break;
      }
    }

    // 4. Completion bookkeeping.
    const auto served_count = static_cast<std::int64_t>(served);
    const bool measuring = cycle >= config.warmup;
    for (int i = 0; i < served; ++i) {
      const int mod = grant_module[i];
      const int winner = winner_of_module[static_cast<std::size_t>(mod)];
      if (resubmit) pending &= ~(1ULL << winner);
      if (dynamic_mask) {
        const auto slot = static_cast<std::size_t>(cycle % transfer);
        bus_busy |= 1ULL << grant_bus[i];
        module_busy |= 1ULL << mod;
        bus_release[slot] |= 1ULL << grant_bus[i];
        module_release[slot] |= 1ULL << mod;
      }
      if (measuring) {
        ++proc_granted[static_cast<std::size_t>(winner)];
        ++module_served[static_cast<std::size_t>(mod)];
        latency_total +=
            cycle - issue_cycle[static_cast<std::size_t>(winner)] + 1;
        ++latency_grants;
      }
    }
    if (!measuring) continue;
    issued_total += issued;
    blocked_total += issued - served_count;
    resubmitted_total += resubmitted;
    served_total += served_count;
    // Busy buses: fresh grants plus healthy buses still carrying a
    // transfer that started in an earlier cycle.
    std::int64_t carrying = served_count;
    if (dynamic_mask) carrying += popcount(busy_pre & ~bus_failed);
    busy_bus_cycles += carrying;

    if (static_cast<std::size_t>(served_count) >= service_histogram.size()) {
      service_histogram.resize(static_cast<std::size_t>(served_count) + 1,
                               0);
    }
    ++service_histogram[static_cast<std::size_t>(served_count)];

    batch_served += served_count;
    if (++batch_cycles == batch_size) {
      const double batch_mean = static_cast<double>(batch_served) /
                                static_cast<double>(batch_cycles);
      batch_stats.add(batch_mean);
      batch_means.push_back(batch_mean);
      batch_served = 0;
      batch_cycles = 0;
    }
    if (config.window_cycles > 0) {
      window_served += served_count;
      if (++window_cycles_seen == config.window_cycles) {
        window_bandwidth.push_back(static_cast<double>(window_served) /
                                   static_cast<double>(window_cycles_seen));
        window_served = 0;
        window_cycles_seen = 0;
      }
    }
  }
  if (batch_cycles > 0) {
    const double batch_mean = static_cast<double>(batch_served) /
                              static_cast<double>(batch_cycles);
    batch_stats.add(batch_mean);
    batch_means.push_back(batch_mean);
  }
  if (config.window_cycles > 0 && window_cycles_seen > 0) {
    window_bandwidth.push_back(static_cast<double>(window_served) /
                               static_cast<double>(window_cycles_seen));
  }

  SimResult result;
  result.seed = config.seed;
  result.batch_means = std::move(batch_means);
  result.measured_cycles = config.cycles;
  const auto cycles_d = static_cast<double>(config.cycles);
  result.bandwidth = static_cast<double>(served_total) / cycles_d;
  result.bandwidth_ci = confidence_interval(batch_stats, 0.95);
  result.offered_load = static_cast<double>(issued_total) / cycles_d;
  result.blocked_fraction =
      issued_total == 0
          ? 0.0
          : static_cast<double>(blocked_total) /
                static_cast<double>(issued_total);
  result.bus_utilization =
      static_cast<double>(busy_bus_cycles) /
      (cycles_d * static_cast<double>(num_buses));
  result.mean_service_cycles =
      latency_grants == 0 ? 0.0
                          : static_cast<double>(latency_total) /
                                static_cast<double>(latency_grants);
  result.per_processor_acceptance.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    result.per_processor_acceptance.push_back(
        static_cast<double>(proc_granted[static_cast<std::size_t>(p)]) /
        cycles_d);
  }
  result.per_module_service.reserve(static_cast<std::size_t>(m));
  for (int module = 0; module < m; ++module) {
    result.per_module_service.push_back(
        static_cast<double>(module_served[static_cast<std::size_t>(module)]) /
        cycles_d);
  }
  result.service_count_distribution.reserve(service_histogram.size());
  for (const std::int64_t count : service_histogram) {
    result.service_count_distribution.push_back(
        static_cast<double>(count) / cycles_d);
  }
  result.window_bandwidth = std::move(window_bandwidth);
  record_run_metrics(/*fast_engine=*/true, total_cycles, issued_total,
                     served_total, blocked_total, resubmitted_total,
                     service_histogram);
  return result;
}

}  // namespace mbus
