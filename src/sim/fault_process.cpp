#include "sim/fault_process.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace mbus {

namespace {

/// One SplitMix64 scrambling step: absorb `value` into `state` (the same
/// construction as sim/replicate.hpp's seed derivation).
std::uint64_t absorb(std::uint64_t state, std::uint64_t value) noexcept {
  return SplitMix64(state ^ value).next();
}

std::uint64_t substream_seed(std::uint64_t base, FaultKind kind,
                             int index) noexcept {
  std::uint64_t state = SplitMix64(base).next();
  state = absorb(state, kind == FaultKind::kBus ? 0x6275736573ULL
                                                : 0x6d6f64756c6573ULL);
  state = absorb(state,
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(index)));
  return state;
}

/// Geometric sojourn on {1, 2, ...} with mean 1/p (inverse-CDF method on
/// the portable uniform01 stream).
std::int64_t geometric(Xoshiro256& rng, double p) {
  if (p >= 1.0) return 1;
  const double u = rng.uniform01();
  double steps = std::floor(std::log1p(-u) / std::log1p(-p));
  // Guard the cast: u near 1 with tiny p can produce astronomically long
  // sojourns; anything beyond any usable horizon is equivalent.
  if (!(steps < 1e18)) steps = 1e18;
  return 1 + static_cast<std::int64_t>(steps);
}

/// Append the fail/repair events of one component over [0, horizon).
void component_timeline(std::vector<FaultEvent>& events, FaultKind kind,
                        int index, double mtbf, double mttr,
                        std::int64_t horizon, std::uint64_t seed) {
  Xoshiro256 rng(substream_seed(seed, kind, index));
  std::int64_t t = 0;
  bool failed = false;
  while (true) {
    t += geometric(rng, failed ? 1.0 / mttr : 1.0 / mtbf);
    if (t >= horizon) break;
    failed = !failed;
    events.push_back(FaultEvent{t, index, failed, kind});
  }
}

void check_rates(double mtbf, double mttr, const char* what) {
  MBUS_EXPECTS(mtbf == 0.0 || mtbf >= 1.0,
               cat(what, " MTBF must be 0 (disabled) or >= 1 cycle"));
  if (mtbf > 0.0) {
    MBUS_EXPECTS(mttr >= 1.0, cat(what, " MTTR must be >= 1 cycle"));
  }
}

/// Shared replay: walks the plan's bus events in cycle groups, invoking
/// `visit(cycle, connected)` after cycle 0's initial mask and after every
/// group; returns via the visitor's bookkeeping.
template <typename Visit>
void replay_bus_timeline(const Topology& topology, const FaultPlan& plan,
                         std::int64_t horizon, Visit&& visit) {
  std::vector<bool> mask = plan.initial_mask();
  if (mask.empty()) {
    mask.assign(static_cast<std::size_t>(topology.num_buses()), false);
  }
  visit(static_cast<std::int64_t>(0), topology.fully_accessible(mask));
  const auto& events = plan.events();
  std::size_t i = 0;
  while (i < events.size()) {
    const std::int64_t cycle = events[i].cycle;
    if (cycle >= horizon) break;
    while (i < events.size() && events[i].cycle == cycle) {
      if (events[i].kind == FaultKind::kBus) {
        mask[static_cast<std::size_t>(events[i].component)] =
            events[i].failed;
      }
      ++i;
    }
    visit(cycle, topology.fully_accessible(mask));
  }
}

}  // namespace

FaultPlan generate_fault_timeline(const FaultProcessSpec& spec,
                                  int num_buses, int num_modules,
                                  std::int64_t horizon, std::uint64_t seed) {
  MBUS_EXPECTS(num_buses >= 1, "need at least one bus");
  MBUS_EXPECTS(num_modules >= 0, "module count must be >= 0");
  MBUS_EXPECTS(horizon >= 1, "need a positive horizon");
  check_rates(spec.bus_mtbf, spec.bus_mttr, "bus");
  check_rates(spec.module_mtbf, spec.module_mttr, "module");

  std::vector<FaultEvent> events;
  if (spec.bus_mtbf > 0.0) {
    for (int b = 0; b < num_buses; ++b) {
      component_timeline(events, FaultKind::kBus, b, spec.bus_mtbf,
                         spec.bus_mttr, horizon, seed);
    }
  }
  const bool module_process = spec.module_mtbf > 0.0 && num_modules > 0;
  if (module_process) {
    for (int m = 0; m < num_modules; ++m) {
      component_timeline(events, FaultKind::kModule, m, spec.module_mtbf,
                         spec.module_mttr, horizon, seed);
    }
  }
  if (module_process) {
    return FaultPlan::timeline(num_buses, num_modules, std::move(events));
  }
  return FaultPlan::timeline(num_buses, std::move(events));
}

std::int64_t first_disconnect_cycle(const Topology& topology,
                                    const FaultPlan& plan,
                                    std::int64_t horizon) {
  MBUS_EXPECTS(horizon >= 1, "need a positive horizon");
  MBUS_EXPECTS(plan.num_buses() == 0 ||
                   plan.num_buses() == topology.num_buses(),
               "fault plan sized for a different bus count");
  std::int64_t first = -1;
  replay_bus_timeline(topology, plan, horizon,
                      [&](std::int64_t cycle, bool connected) {
                        if (!connected && first < 0) first = cycle;
                      });
  return first;
}

double connectivity_fraction(const Topology& topology, const FaultPlan& plan,
                             std::int64_t horizon) {
  MBUS_EXPECTS(horizon >= 1, "need a positive horizon");
  MBUS_EXPECTS(plan.num_buses() == 0 ||
                   plan.num_buses() == topology.num_buses(),
               "fault plan sized for a different bus count");
  std::int64_t connected_cycles = 0;
  std::int64_t prev_cycle = 0;
  bool connected = true;
  replay_bus_timeline(topology, plan, horizon,
                      [&](std::int64_t cycle, bool now_connected) {
                        if (connected) connected_cycles += cycle - prev_cycle;
                        prev_cycle = cycle;
                        connected = now_connected;
                      });
  if (connected) connected_cycles += horizon - prev_cycle;
  return static_cast<double>(connected_cycles) /
         static_cast<double>(horizon);
}

}  // namespace mbus
