// Measurement results of a simulation run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace mbus {

struct SimResult {
  /// Mean number of memory services granted per cycle — the effective
  /// memory bandwidth estimate (post-warmup).
  double bandwidth = 0.0;
  /// 95% confidence interval from batch means (pooled across replications
  /// when the result was produced by merge_replications).
  ConfidenceInterval bandwidth_ci;

  /// The seed the run was executed with. Merged results keep the smallest
  /// seed of their inputs; the seed also serves as the canonical sort key
  /// that makes merging independent of completion order.
  std::uint64_t seed = 0;
  /// Number of pooled independent replications (1 for a single run).
  int replications = 1;
  /// The per-batch bandwidth means behind `bandwidth_ci`, kept so
  /// replications can be pooled into one batch-means interval.
  std::vector<double> batch_means;

  std::int64_t measured_cycles = 0;
  /// Mean requests issued per cycle (should approach N·r without
  /// resubmission).
  double offered_load = 0.0;
  /// Fraction of issued requests that were blocked (memory or bus
  /// contention).
  double blocked_fraction = 0.0;

  /// Fraction of bus-cycles spent carrying transfers (with single-cycle
  /// transfers this equals bandwidth / B).
  double bus_utilization = 0.0;

  /// Mean cycles from a request's first issue to its grant (1.0 = every
  /// granted request succeeded on its first attempt). Greater than 1 only
  /// in resubmission mode, where blocked requests retry.
  double mean_service_cycles = 0.0;

  /// Per-processor acceptance rate (granted requests per cycle) — used by
  /// the arbitration-fairness ablation.
  std::vector<double> per_processor_acceptance;
  /// Per-module service rate (services per cycle).
  std::vector<double> per_module_service;
  /// Per-cycle distribution of the number of services (index = count).
  std::vector<double> service_count_distribution;

  /// Bandwidth of consecutive measurement windows (only populated when
  /// SimConfig::window_cycles > 0); the last, possibly partial, window is
  /// included.
  std::vector<double> window_bandwidth;
};

/// Record a finished engine run's work counters into the global metrics
/// registry (DESIGN.md §10): sim.runs[.reference|.fast], sim.cycles,
/// sim.requests.{issued,granted,blocked,resubmitted}, and the
/// sim.services_per_cycle histogram (bulk-merged from the run's local
/// service histogram, so the per-cycle hot path pays nothing). Work
/// counters are deterministic: identical for both engines and any thread
/// count at a fixed seed.
void record_run_metrics(bool fast_engine, std::int64_t cycles,
                        std::int64_t issued, std::int64_t granted,
                        std::int64_t blocked, std::int64_t resubmitted,
                        const std::vector<std::int64_t>& service_histogram);

/// Jain's fairness index of a rate vector: (Σx)² / (n·Σx²); 1.0 means
/// perfectly equal rates, 1/n means one party gets everything.
double jain_fairness(const std::vector<double>& rates);

/// Relative spread (max−min)/mean of a rate vector; 0 for empty input.
double relative_spread(const std::vector<double>& rates);

}  // namespace mbus
