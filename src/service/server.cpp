#include "service/server.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/format.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace mbus::service {

namespace {

/// Monotonic microseconds independent of the obs layer (which compiles
/// to a 0-returning stub under MBUS_NO_OBS — the breaker's cooldown and
/// the drain deadline must keep working there).
std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// How one admitted request ended (reply classification + metrics).
enum class Outcome { kServed, kBadRequest, kFailed, kDeadline, kCancelled };

struct Pending {
  std::uint64_t id = 0;
  std::uint64_t conn_id = 0;
  std::atomic<bool> cancel{false};
  std::uint64_t lease = 0;
  std::int64_t admitted_us = 0;
};

struct Completion {
  std::uint64_t pending_id = 0;
  std::uint64_t conn_id = 0;
  std::string payload;
  Outcome outcome = Outcome::kServed;
};

struct Connection {
  int fd = -1;
  FrameReader reader;
  std::string outbuf;
  /// The peer half-closed (EOF on read). Replies for its in-flight
  /// requests still flow; the connection is reaped once the last one is
  /// flushed.
  bool read_closed = false;
  /// Requests admitted on this connection and not yet answered.
  int inflight = 0;
};

}  // namespace

std::string ServerReport::summary() const {
  return cat("connections=", connections, " accepted=", accepted,
             " served=", served, " shed=", shed, " degraded=", degraded,
             " failed=", failed, " deadline_exceeded=", deadline_exceeded,
             " cancelled=", cancelled, " bad_requests=", bad_requests,
             " draining_rejects=", draining_rejects);
}

struct Server::Impl {
  explicit Impl(const ServerConfig& cfg) : config(cfg), breaker(cfg.breaker) {}

  ServerConfig config;
  UnixListener listener;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<Watchdog> watchdog;
  CircuitBreaker breaker;
  CircuitBreaker::State last_breaker_state = CircuitBreaker::State::kClosed;

  std::map<std::uint64_t, Connection> connections;
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight;
  std::uint64_t next_conn_id = 1;
  std::uint64_t next_pending_id = 1;
  int outstanding = 0;  // admitted, reply not yet delivered to the loop

  bool draining = false;
  bool drain_cutoff_done = false;
  std::int64_t drain_deadline_us = 0;

  ServerReport report;

  std::mutex completions_mutex;
  std::vector<Completion> completions;
  int wake_read = -1;
  int wake_write = -1;

  // ---- worker -> loop handoff -------------------------------------

  void push_completion(Completion completion) {
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      completions.push_back(std::move(completion));
    }
    // Best-effort wake: a full pipe means the loop is already behind on
    // wakeups and will drain us on its next pass anyway.
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  // ---- connection plumbing ----------------------------------------

  void close_conn(std::uint64_t conn_id) {
    const auto it = connections.find(conn_id);
    if (it == connections.end()) return;
    close_fd(it->second.fd);
    connections.erase(it);
    obs::MetricsRegistry::global().gauge("svc.connections.open")
        .set(static_cast<std::int64_t>(connections.size()));
  }

  /// Flush as much of the connection's output buffer as the socket
  /// accepts right now. Returns false when the connection broke (and
  /// has been closed).
  bool flush_conn(std::uint64_t conn_id) {
    const auto it = connections.find(conn_id);
    if (it == connections.end()) return false;
    Connection& conn = it->second;
    while (!conn.outbuf.empty()) {
      const ssize_t n = ::send(conn.fd, conn.outbuf.data(),
                               conn.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      close_conn(conn_id);  // peer gone (EPIPE/ECONNRESET/...)
      return false;
    }
    return true;
  }

  /// Queue one reply on its connection (dropped with a counter when the
  /// client already disconnected — the reply has nowhere to go).
  void enqueue_reply(std::uint64_t conn_id, const ServiceReply& reply) {
    const auto it = connections.find(conn_id);
    if (it == connections.end()) {
      obs::MetricsRegistry::global()
          .counter("svc.replies.dropped_disconnected")
          .increment();
      return;
    }
    it->second.outbuf += encode_frame(format_reply(reply));
    if (it->second.outbuf.size() > kMaxOutbufBytes) {
      // A client that sends requests but never reads replies would grow
      // this buffer without bound; bounded memory wins over the slow
      // consumer.
      obs::MetricsRegistry::global()
          .counter("svc.connections.slow_closed")
          .increment();
      close_conn(conn_id);
      return;
    }
    flush_conn(conn_id);
  }

  // ---- admission & dispatch ---------------------------------------

  void set_queue_gauge() {
    obs::MetricsRegistry::global().gauge("svc.queue.depth").set(outstanding);
  }

  std::int64_t clamp_deadline_ms(std::int64_t requested) const {
    if (requested <= 0) return config.default_deadline_ms;
    return std::min(requested, config.max_deadline_ms);
  }

  void record_outcome(Outcome outcome, const char* /*op*/) {
    auto& reg = obs::MetricsRegistry::global();
    switch (outcome) {
      case Outcome::kServed:
        ++report.served;
        reg.counter("svc.requests.served").increment();
        break;
      case Outcome::kBadRequest:
        ++report.bad_requests;
        reg.counter("svc.requests.bad_request").increment();
        break;
      case Outcome::kFailed:
        ++report.failed;
        reg.counter("svc.requests.failed").increment();
        break;
      case Outcome::kDeadline:
        ++report.deadline_exceeded;
        reg.counter("svc.requests.deadline_exceeded").increment();
        break;
      case Outcome::kCancelled:
        ++report.cancelled;
        reg.counter("svc.requests.cancelled").increment();
        break;
    }
  }

  void admit(std::uint64_t conn_id, ServiceRequest request) {
    auto& reg = obs::MetricsRegistry::global();
    auto pending = std::make_shared<Pending>();
    pending->id = next_pending_id++;
    pending->conn_id = conn_id;
    pending->admitted_us = steady_now_us();
    const std::int64_t deadline_ms = clamp_deadline_ms(request.deadline_ms);
    pending->lease = watchdog->arm(&pending->cancel,
                                   std::chrono::milliseconds(deadline_ms));
    inflight.emplace(pending->id, pending);
    const auto conn_it = connections.find(conn_id);
    if (conn_it != connections.end()) ++conn_it->second.inflight;
    ++outstanding;
    set_queue_gauge();
    ++report.accepted;
    reg.counter("svc.requests.accepted").increment();

    Impl* impl = this;
    pool->submit([impl, pending, request = std::move(request)]() {
      Completion completion;
      completion.pending_id = pending->id;
      completion.conn_id = pending->conn_id;
      bool cancelled_seen = false;
      try {
        MBUS_FAILPOINT("service.dispatch");
        const ServiceReply reply =
            execute_request(request, &pending->cancel);
        completion.payload = format_reply(reply);
        completion.outcome = Outcome::kServed;
      } catch (const Cancelled&) {
        cancelled_seen = true;
      } catch (const InvalidArgument& e) {
        completion.payload = format_reply(
            make_error_reply(request.id, kErrBadRequest, e.what()));
        completion.outcome = Outcome::kBadRequest;
      } catch (const std::exception& e) {
        completion.payload = format_reply(
            make_error_reply(request.id, kErrInternal, e.what()));
        completion.outcome = Outcome::kFailed;
      }
      // Disarm exactly once, after the run: true means this request's
      // own deadline fired — the distinction between "too slow" (a
      // client-visible deadline_exceeded, an engine-health signal) and
      // "server drain cut it short" (cancelled, not a health signal).
      const bool timed_out = impl->watchdog->disarm(pending->lease);
      if (cancelled_seen) {
        completion.outcome =
            timed_out ? Outcome::kDeadline : Outcome::kCancelled;
        completion.payload = format_reply(make_error_reply(
            request.id,
            timed_out ? kErrDeadlineExceeded : kErrCancelled,
            timed_out ? "deadline exceeded" : "cancelled by server drain"));
      }
      const std::int64_t now = steady_now_us();
      switch (completion.outcome) {
        case Outcome::kServed:
        case Outcome::kBadRequest:
          // A bad request says nothing about engine health; counting it
          // as breaker success also guarantees a half-open probe always
          // resolves.
          impl->breaker.record_success(now);
          break;
        case Outcome::kFailed:
        case Outcome::kDeadline:
          // Deadline overruns are an engine-health signal too: a wedged
          // engine must eventually trip the breaker, and a half-open
          // probe that times out must re-open it.
          impl->breaker.record_failure(now);
          break;
        case Outcome::kCancelled:
          break;  // drain artifact, not a health signal
      }
      obs::MetricsRegistry::global()
          .histogram("svc.request_us", obs::latency_us_bounds())
          .observe(now - pending->admitted_us);
      impl->push_completion(std::move(completion));
    });
  }

  void handle_request(std::uint64_t conn_id, const std::string& payload) {
    auto& reg = obs::MetricsRegistry::global();
    ServiceRequest request;
    try {
      request = parse_request(payload);
    } catch (const std::exception& e) {
      ++report.bad_requests;
      reg.counter("svc.requests.bad_request").increment();
      enqueue_reply(conn_id, make_error_reply(0, kErrBadRequest, e.what()));
      return;
    }
    if (draining) {
      ++report.draining_rejects;
      reg.counter("svc.requests.draining").increment();
      enqueue_reply(conn_id,
                    make_error_reply(request.id, kErrDraining,
                                     "server is draining; not admitted"));
      return;
    }
    if (request.op == Op::kPing) {
      // Health probes are answered inline from the loop: they must work
      // even when the queue is full and the breaker is open. They still
      // count — every request gets an accounted outcome.
      ++report.accepted;
      reg.counter("svc.requests.accepted").increment();
      ++report.served;
      reg.counter("svc.requests.served").increment();
      ServiceReply reply = make_ok_reply(request.id);
      reply.fields["op"] = "ping";
      enqueue_reply(conn_id, reply);
      return;
    }
    if (!breaker.allow(steady_now_us())) {
      ++report.degraded;
      reg.counter("svc.requests.degraded").increment();
      enqueue_reply(conn_id,
                    make_error_reply(request.id, kErrDegraded,
                                     "circuit breaker open: engines are "
                                     "failing; retry after cooldown"));
      return;
    }
    if (outstanding >= config.queue_capacity) {
      ++report.shed;
      reg.counter("svc.requests.shed").increment();
      enqueue_reply(
          conn_id,
          make_error_reply(request.id, kErrOverloaded,
                           cat("admission queue full (", outstanding, "/",
                               config.queue_capacity, "); retry later")));
      return;
    }
    admit(conn_id, std::move(request));
  }

  void handle_readable(std::uint64_t conn_id) {
    const auto it = connections.find(conn_id);
    if (it == connections.end()) return;
    Connection& conn = it->second;
    if (conn.read_closed) return;  // POLLHUP after a half-close
    if (const int injected = MBUS_FAILPOINT_IO("service.read")) {
      errno = injected;
      obs::MetricsRegistry::global().counter("svc.read.errors").increment();
      close_conn(conn_id);
      return;
    }
    const bool still_open = conn.reader.read_available(conn.fd);
    try {
      std::string payload;
      while (connections.count(conn_id) != 0 &&
             conn.reader.next_frame(payload)) {
        handle_request(conn_id, payload);
      }
    } catch (const ProtocolError&) {
      obs::MetricsRegistry::global()
          .counter("svc.protocol.errors")
          .increment();
      close_conn(conn_id);
      return;
    }
    if (connections.count(conn_id) == 0) return;
    if (conn.reader.pending_bytes() > kMaxRequestBytes) {
      // No legal request is this long; a peer streaming an enormous
      // frame is either broken or hostile, and its buffer must not grow.
      obs::MetricsRegistry::global()
          .counter("svc.protocol.errors")
          .increment();
      close_conn(conn_id);
      return;
    }
    // EOF means the peer is done *sending* — a client that batched its
    // requests and half-closed still deserves every reply. Stop reading;
    // reap_half_closed() closes the fd once the last reply is flushed.
    if (!still_open) conn.read_closed = true;
  }

  /// Close half-closed connections whose every admitted request has been
  /// answered and flushed.
  void reap_half_closed() {
    std::vector<std::uint64_t> done;
    for (const auto& [conn_id, conn] : connections) {
      if (conn.read_closed && conn.inflight == 0 && conn.outbuf.empty()) {
        done.push_back(conn_id);
      }
    }
    for (const std::uint64_t conn_id : done) close_conn(conn_id);
  }

  void accept_clients() {
    auto& reg = obs::MetricsRegistry::global();
    if (const int injected = MBUS_FAILPOINT_IO("service.accept")) {
      errno = injected;
      reg.counter("svc.accept.errors").increment();
      return;
    }
    while (true) {
      const int fd = listener.accept_client();
      if (fd < 0) break;
      Connection conn;
      conn.fd = fd;
      connections.emplace(next_conn_id++, std::move(conn));
      ++report.connections;
      reg.counter("svc.connections.accepted").increment();
      reg.gauge("svc.connections.open")
          .set(static_cast<std::int64_t>(connections.size()));
    }
  }

  void drain_wake_pipe() {
    char sink[256];
    while (::read(wake_read, sink, sizeof sink) > 0) {
    }
  }

  void deliver_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      batch.swap(completions);
    }
    for (Completion& completion : batch) {
      record_outcome(completion.outcome, "");
      inflight.erase(completion.pending_id);
      const auto conn_it = connections.find(completion.conn_id);
      if (conn_it != connections.end()) --conn_it->second.inflight;
      --outstanding;
      set_queue_gauge();
      try {
        enqueue_reply(completion.conn_id,
                      parse_reply(completion.payload));
      } catch (const std::exception&) {
        // A reply the protocol itself cannot round-trip is a bug, but it
        // must not take the server down; the client sees the connection
        // close instead of a corrupt frame.
        close_conn(completion.conn_id);
      }
    }
  }

  void poll_breaker_events() {
    const CircuitBreaker::State state = breaker.state();
    if (state == last_breaker_state) return;
    last_breaker_state = state;
    obs::MetricsRegistry::global().gauge("svc.breaker.state")
        .set(static_cast<std::int64_t>(state));
    obs::EventLog::global().emit(
        "svc.breaker",
        {{"state", CircuitBreaker::to_string(state)},
         {"consecutive_failures", breaker.consecutive_failures()}});
  }

  void begin_drain() {
    draining = true;
    drain_deadline_us = steady_now_us() + config.drain_grace_ms * 1000;
    listener.close();
    obs::EventLog::global().emit("svc.drain.begin",
                                 {{"outstanding", outstanding}});
  }

  void drain_cutoff_if_due() {
    if (!draining || drain_cutoff_done) return;
    if (outstanding == 0 || steady_now_us() < drain_deadline_us) return;
    for (auto& [id, pending] : inflight) {
      pending->cancel.store(true, std::memory_order_relaxed);
    }
    drain_cutoff_done = true;
    obs::EventLog::global().emit("svc.drain.cutoff",
                                 {{"outstanding", outstanding}});
  }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  MBUS_EXPECTS(!config_.socket_path.empty(),
               "server needs a socket path");
  MBUS_EXPECTS(config_.workers >= 1,
               cat("server needs workers >= 1, got ", config_.workers));
  MBUS_EXPECTS(config_.queue_capacity >= 1,
               cat("server needs queue_capacity >= 1, got ",
                   config_.queue_capacity));
  MBUS_EXPECTS(config_.default_deadline_ms >= 1 &&
                   config_.max_deadline_ms >= config_.default_deadline_ms,
               "server needs 1 <= default_deadline_ms <= max_deadline_ms");
  MBUS_EXPECTS(config_.drain_grace_ms >= 0,
               "server needs drain_grace_ms >= 0");
  MBUS_EXPECTS(config_.poll_interval_ms >= 1,
               "server needs poll_interval_ms >= 1");
  impl_ = new Impl(config_);
}

Server::~Server() {
  if (impl_ != nullptr) {
    // run() tears down pool/watchdog itself; these are the fds of a
    // server that never ran or stopped early.
    if (impl_->wake_read >= 0) close_fd(impl_->wake_read);
    if (impl_->wake_write >= 0) close_fd(impl_->wake_write);
    for (auto& [id, conn] : impl_->connections) close_fd(conn.fd);
    delete impl_;
  }
}

void Server::start() {
  impl_->listener = UnixListener::bind_and_listen(config_.socket_path,
                                                  config_.listen_backlog);
}

ServerReport Server::run(const CancellationToken& stop) {
  MBUS_EXPECTS(impl_->listener.valid(),
               "Server::run needs start() to have bound the socket");
  Impl& impl = *impl_;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw Error(cat("pipe() for the service wake channel failed: ",
                    strerror(errno)));
  }
  impl.wake_read = pipe_fds[0];
  impl.wake_write = pipe_fds[1];
  set_nonblocking(impl.wake_read);
  set_nonblocking(impl.wake_write);

  impl.pool = std::make_unique<ThreadPool>(config_.workers);
  impl.watchdog = std::make_unique<Watchdog>();

  obs::EventLog::global().emit(
      "svc.start", {{"socket", config_.socket_path},
                    {"workers", config_.workers},
                    {"queue_capacity", config_.queue_capacity}});

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn_ids;
  while (true) {
    if (!impl.draining && stop.stop_requested()) impl.begin_drain();
    impl.drain_cutoff_if_due();
    if (impl.draining && impl.outstanding == 0) {
      std::lock_guard<std::mutex> lock(impl.completions_mutex);
      if (impl.completions.empty()) break;
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({impl.wake_read, POLLIN, 0});
    fd_conn_ids.push_back(0);
    if (!impl.draining && impl.listener.valid()) {
      fds.push_back({impl.listener.fd(), POLLIN, 0});
      fd_conn_ids.push_back(0);
    }
    const std::size_t first_conn = fds.size();
    for (const auto& [conn_id, conn] : impl.connections) {
      short events = conn.read_closed ? 0 : POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn_ids.push_back(conn_id);
    }

    poll_eintr(fds.data(), static_cast<nfds_t>(fds.size()),
               config_.poll_interval_ms);

    if ((fds[0].revents & POLLIN) != 0) impl.drain_wake_pipe();
    impl.deliver_completions();
    if (!impl.draining && impl.listener.valid() && first_conn >= 2 &&
        (fds[1].revents & POLLIN) != 0) {
      impl.accept_clients();
    }
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      const std::uint64_t conn_id = fd_conn_ids[i];
      if ((fds[i].revents & POLLOUT) != 0) impl.flush_conn(conn_id);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        impl.handle_readable(conn_id);
      }
    }
    impl.reap_half_closed();
    impl.poll_breaker_events();
  }

  // All work is done. Give straggling outbufs a short, bounded window to
  // flush (clients deserve their last replies), then tear down.
  const std::int64_t flush_deadline_us = steady_now_us() + 500 * 1000;
  while (steady_now_us() < flush_deadline_us) {
    bool any_pending = false;
    std::vector<std::uint64_t> ids;
    for (const auto& [conn_id, conn] : impl.connections) {
      if (!conn.outbuf.empty()) ids.push_back(conn_id);
    }
    for (const std::uint64_t conn_id : ids) {
      impl.flush_conn(conn_id);
    }
    for (const auto& [conn_id, conn] : impl.connections) {
      if (!conn.outbuf.empty()) any_pending = true;
    }
    if (!any_pending) break;
    pollfd idle{impl.wake_read, POLLIN, 0};
    poll_eintr(&idle, 1, 20);
  }

  impl.pool.reset();      // joins the workers
  impl.watchdog.reset();  // joins the monitor
  std::vector<std::uint64_t> ids;
  for (const auto& [conn_id, conn] : impl.connections) {
    ids.push_back(conn_id);
  }
  for (const std::uint64_t conn_id : ids) impl.close_conn(conn_id);
  close_fd(impl.wake_read);
  close_fd(impl.wake_write);
  impl.wake_read = -1;
  impl.wake_write = -1;

  obs::EventLog::global().emit(
      "svc.drain.end",
      {{"served", impl.report.served}, {"shed", impl.report.shed},
       {"deadline_exceeded", impl.report.deadline_exceeded},
       {"cancelled", impl.report.cancelled}});
  return impl.report;
}

}  // namespace mbus::service
