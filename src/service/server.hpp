// The mbusd evaluation server: a long-running, overload-hardened
// serving surface over the batch evaluation library (DESIGN.md §14).
//
// Architecture: one single-threaded poll(2) event loop owns the unix
// listener, every client connection, and all bookkeeping; evaluation
// work runs on a shared ThreadPool. The loop and the workers meet in
// exactly two places — a mutex-guarded completion queue (workers push
// finished reply payloads and wake the loop through a self-pipe) and
// the per-request atomic cancel flag (set by the deadline watchdog or
// the drain cutoff, polled by the engines).
//
// Overload story, end to end:
//   * Admission — at most `queue_capacity` requests may be admitted and
//     unfinished at once. Request `queue_capacity + 1` gets a structured
//     `overloaded` error reply immediately: memory stays bounded under
//     any arrival rate, and the client learns to back off. Nothing is
//     ever silently dropped.
//   * Deadlines — every admitted request is armed on the shared Watchdog
//     for its (clamped) deadline, queue wait included. A request whose
//     deadline fires while queued or mid-simulation observes its cancel
//     flag at the engines' next poll and is answered
//     `deadline_exceeded` — a wedged simulation cannot hold a worker
//     hostage past its budget.
//   * Circuit breaker — consecutive engine failures trip the breaker;
//     while open, requests get fast `degraded` replies without burning
//     queue slots, and half-open probes test recovery (see breaker.hpp).
//   * Graceful drain — on cancellation (SIGINT/SIGTERM via
//     SignalGuard→CancellationToken in mbusd), the listener closes, new
//     requests on live connections get `draining` replies, in-flight
//     work finishes or deadlines out, and after `drain_grace_ms` any
//     stragglers are cancelled. run() then returns normally, so mbusd
//     exits 0.
//
// Slow or hostile clients are bounded too: a connection whose unparsed
// input exceeds kMaxRequestBytes or whose unread replies exceed
// kMaxOutbufBytes is closed, and framing corruption (ProtocolError)
// closes the connection — a desynchronized stream cannot be saved.
#pragma once

#include <cstdint>
#include <string>

#include "service/breaker.hpp"
#include "util/shutdown.hpp"

namespace mbus::service {

struct ServerConfig {
  /// Filesystem path of the unix-domain listening socket.
  std::string socket_path;
  /// Evaluation worker threads (>= 1; the event loop is extra).
  int workers = 2;
  /// Bound on admitted-but-unfinished requests; beyond it, shed.
  int queue_capacity = 32;
  /// Deadline applied when a request carries none.
  std::int64_t default_deadline_ms = 2000;
  /// Upper clamp on client-supplied deadlines.
  std::int64_t max_deadline_ms = 30000;
  /// Drain budget: after this, still-running requests are cancelled.
  std::int64_t drain_grace_ms = 3000;
  BreakerConfig breaker;
  int listen_backlog = 64;
  /// Poll timeout — bounds how stale cancellation detection can be.
  int poll_interval_ms = 20;
};

/// Tallies of one run() (the daemon's exit summary; the same counts
/// stream into the obs registry as svc.requests.* while running).
struct ServerReport {
  std::int64_t connections = 0;
  std::int64_t accepted = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t degraded = 0;
  std::int64_t failed = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t cancelled = 0;
  std::int64_t bad_requests = 0;
  std::int64_t draining_rejects = 0;

  std::string summary() const;
};

class Server {
 public:
  /// Unparsed input cap per connection (requests are one short line).
  static constexpr std::size_t kMaxRequestBytes = 64u << 10;
  /// Unflushed reply cap per connection (slow-consumer cutoff).
  static constexpr std::size_t kMaxOutbufBytes = 4u << 20;

  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen on config.socket_path. Throws on failure. Separate
  /// from run() so callers know the socket exists before clients race
  /// to connect.
  void start();

  /// Serve until `stop` fires, then drain and return the run's tallies.
  /// Must be preceded by start().
  ServerReport run(const CancellationToken& stop);

  const ServerConfig& config() const noexcept { return config_; }

 private:
  struct Impl;
  ServerConfig config_;
  Impl* impl_ = nullptr;
};

}  // namespace mbus::service
