// FleetSupervisor: K supervised mbusd replicas behind one socket
// directory (DESIGN.md §15).
//
// Each replica is a fork-without-exec child (util/subprocess) running a
// full Server event loop on its own unix socket `<dir>/replica-<i>.sock`.
// The supervisor is the fault-handling side of the fleet:
//
//   * readiness — a replica writes a "ready" frame on its result pipe
//     once its listener is bound, so start() returns only when every
//     socket accepts connections (no connect/bind race with clients);
//   * liveness — tick() probes replicas with protocol-level pings
//     (answered inline by the server even under full queues and open
//     breakers, so a ping failure means crashed or wedged, not busy)
//     and reaps child deaths with WNOHANG waitpid;
//   * recovery — a crashed replica is respawned on the same socket
//     path, up to `max_respawns` times; beyond that it is marked kFailed
//     and left down (a crash loop must become visible, not be hidden by
//     infinite restarts);
//   * chaos — per-replica failpoint specs arm in the child after the
//     fork (the supervisor's own process never arms them), so a drill
//     can slow or kill exactly one replica;
//   * drain — stop() SIGTERMs every live replica; the child's
//     SignalGuard turns that into a graceful server drain and exit 0,
//     and the report records every replica's final exit status.
//
// Fork safety: start() and tick() fork. Like the campaign supervisor,
// the fleet supervisor must run in a process with no other live threads
// at spawn time — its loop is single-threaded by design, and the
// single-threaded MbusClient exists so callers can keep it that way.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "util/subprocess.hpp"

namespace mbus::service {

enum class ReplicaHealth {
  kStarting,  ///< Forked; ready frame not yet seen.
  kHealthy,   ///< Ready and answering pings.
  kUnhealthy, ///< Alive but failing pings (wedged or drowning).
  kCrashed,   ///< Dead, respawn pending (tick() will restart it).
  kFailed,    ///< Dead with respawn budget exhausted; left down.
};

const char* to_string(ReplicaHealth health);

struct FleetConfig {
  /// Directory for the replica sockets (`<dir>/replica-<i>.sock`).
  std::string socket_dir;
  int replicas = 3;
  /// Per-replica server template; socket_path is overwritten per index.
  ServerConfig server;
  /// Respawn budget per replica slot.
  int max_respawns = 3;
  /// Ping probe timeout; probes run once per tick().
  std::int64_t ping_timeout_ms = 250;
  /// Consecutive ping failures before kHealthy → kUnhealthy.
  int unhealthy_after = 2;
  /// Budget for every replica to report ready in start() / respawn.
  std::int64_t ready_timeout_ms = 10000;
  /// Per-replica failpoint specs (failpoint.hpp grammar) armed in the
  /// child after the fork; "" arms nothing. Shorter vectors leave the
  /// remaining replicas clean.
  std::vector<std::string> replica_failpoints;

  void validate() const;
};

struct ReplicaStatus {
  ReplicaHealth health = ReplicaHealth::kStarting;
  pid_t pid = -1;
  int respawns = 0;
  std::string socket_path;
  /// Final exit ("exit 0", "signal 9 (Killed)") once reaped.
  std::string last_exit;
};

struct FleetReport {
  int replicas = 0;
  int respawns = 0;
  int crashes = 0;
  /// Every replica alive at stop() time drained and exited 0.
  bool all_exited_zero = false;
  std::vector<std::string> exit_descriptions;
  std::vector<std::string> drain_summaries;

  /// "fleet drained: exit0=3/3 respawns=1 crashes=1".
  std::string summary() const;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetConfig config);
  /// SIGKILLs any replica still running (prefer an explicit stop()).
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Fork every replica and wait for all ready frames. Throws Error
  /// when a replica fails to come up within ready_timeout_ms.
  void start();

  /// One supervision step: drain result pipes, reap deaths, respawn
  /// crashed replicas (respawn budget permitting), ping-probe the live
  /// ones. Call this from the owning loop every ~100ms; it never
  /// blocks beyond ping_timeout_ms per live replica.
  void tick();

  /// Kill replica `index` with `sig` (SIGKILL for crash drills). The
  /// next tick() observes the death and respawns.
  void kill_replica(std::size_t index, int sig);

  /// SIGTERM every live replica, wait up to `grace_ms` each for a clean
  /// drain (then SIGKILL), and report final exit statuses.
  FleetReport stop(std::int64_t grace_ms);

  std::vector<std::string> socket_paths() const;
  ReplicaStatus status(std::size_t index) const;
  std::size_t replica_count() const { return slots_.size(); }
  std::size_t healthy_count() const;
  int total_respawns() const noexcept { return total_respawns_; }
  int total_crashes() const noexcept { return total_crashes_; }

 private:
  struct Slot {
    Subprocess proc;
    FrameReader reader;
    ReplicaHealth health = ReplicaHealth::kStarting;
    int respawns = 0;
    int ping_failures = 0;
    std::string socket_path;
    std::string last_exit;
    std::string drain_summary;
  };

  void spawn_replica(std::size_t index);
  /// Drain the slot's result pipe, consuming ready/drained frames.
  void drain_pipe(std::size_t index);
  bool wait_ready(std::size_t index, std::int64_t timeout_ms);
  void set_health(std::size_t index, ReplicaHealth health);

  FleetConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Ping client over all replica sockets (transient connections only).
  std::unique_ptr<MbusClient> pinger_;
  int total_respawns_ = 0;
  int total_crashes_ = 0;
  bool started_ = false;
};

}  // namespace mbus::service
