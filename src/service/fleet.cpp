#include "service/fleet.hpp"

#include <signal.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/format.hpp"
#include "util/shutdown.hpp"
#include "util/socket.hpp"

namespace mbus::service {

namespace {

std::int64_t steady_ms() {
  return obs::monotonic_us() / 1000;  // obs clock is fine here: the
  // supervisor is never built with MBUS_NO_OBS in a config where its
  // timeouts matter more than observability (tests cover the real one).
}

std::string replica_socket_path(const std::string& dir, std::size_t index) {
  return cat(dir, "/replica-", index, ".sock");
}

/// The forked replica body. Runs a complete mbusd-equivalent: signal-
/// driven drain, ready handshake, drain summary over the result pipe.
/// Everything it needs crossed the fork as copies — it must never touch
/// supervisor state.
int replica_main(ServerConfig server_config, std::string failpoint_spec,
                 int /*command_fd*/, int result_fd) {
  // The fork copied the parent's signal registration and any armed
  // failpoints; this replica wants its own.
  reset_signal_state_for_forked_child();
  failpoints::disarm_all();
  // The inherited event-log sink is shared with the supervisor; two
  // processes appending would interleave lines. The supervisor is the
  // sole emitter.
  obs::EventLog::global().close();
  try {
    if (!failpoint_spec.empty()) failpoints::arm(failpoint_spec);
    CancellationToken token;
    SignalGuard guard(token);
    Server server(std::move(server_config));
    server.start();
    write_frame(result_fd, "ready");
    const ServerReport report = server.run(token);
    write_frame(result_fd, cat("drained ", report.summary()));
    return 0;
  } catch (const std::exception& error) {
    write_frame(result_fd, cat("error ", error.what()));
    return 1;
  }
}

}  // namespace

const char* to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kStarting:
      return "starting";
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kUnhealthy:
      return "unhealthy";
    case ReplicaHealth::kCrashed:
      return "crashed";
    case ReplicaHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

void FleetConfig::validate() const {
  MBUS_EXPECTS(!socket_dir.empty(), "fleet needs a socket directory");
  MBUS_EXPECTS(replicas >= 1, "fleet needs at least one replica");
  MBUS_EXPECTS(max_respawns >= 0, "max_respawns must be >= 0");
  MBUS_EXPECTS(ping_timeout_ms >= 1, "ping_timeout_ms must be >= 1");
  MBUS_EXPECTS(unhealthy_after >= 1, "unhealthy_after must be >= 1");
  MBUS_EXPECTS(ready_timeout_ms >= 1, "ready_timeout_ms must be >= 1");
}

std::string FleetReport::summary() const {
  int exit_zero = 0;
  for (const auto& description : exit_descriptions) {
    if (description == "exit 0") ++exit_zero;
  }
  return cat("fleet drained: exit0=", exit_zero, "/",
             exit_descriptions.size(), " respawns=", respawns,
             " crashes=", crashes);
}

FleetSupervisor::FleetSupervisor(FleetConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

FleetSupervisor::~FleetSupervisor() = default;  // Subprocess dtors SIGKILL

void FleetSupervisor::spawn_replica(std::size_t index) {
  Slot& slot = *slots_[index];

  // Other replicas' pipe ends must not survive into this child: a
  // sibling holding a dead replica's write end would mask its EOF.
  std::vector<int> close_fds;
  for (std::size_t other = 0; other < slots_.size(); ++other) {
    if (other == index) continue;
    if (slots_[other]->proc.result_fd() >= 0) {
      close_fds.push_back(slots_[other]->proc.result_fd());
    }
    if (slots_[other]->proc.command_fd() >= 0) {
      close_fds.push_back(slots_[other]->proc.command_fd());
    }
  }

  ServerConfig server_config = config_.server;
  server_config.socket_path = slot.socket_path;
  std::string failpoint_spec =
      index < config_.replica_failpoints.size()
          ? config_.replica_failpoints[index]
          : std::string();

  slot.proc = Subprocess::spawn(
      [server_config, failpoint_spec](int command_fd, int result_fd) {
        return replica_main(server_config, failpoint_spec, command_fd,
                            result_fd);
      },
      close_fds);
  slot.reader = FrameReader{};
  slot.health = ReplicaHealth::kStarting;
  slot.ping_failures = 0;
  slot.drain_summary.clear();
  obs::EventLog::global().emit(
      "fleet.replica.spawned",
      {{"replica", static_cast<int>(index)},
       {"pid", static_cast<std::int64_t>(slot.proc.pid())},
       {"respawns", slot.respawns}});
}

void FleetSupervisor::set_health(std::size_t index, ReplicaHealth health) {
  Slot& slot = *slots_[index];
  if (slot.health == health) return;
  obs::EventLog::global().emit("fleet.replica.health",
                               {{"replica", static_cast<int>(index)},
                                {"from", to_string(slot.health)},
                                {"to", to_string(health)}});
  slot.health = health;
  std::int64_t healthy = 0;
  for (const auto& s : slots_) {
    if (s->health == ReplicaHealth::kHealthy) ++healthy;
  }
  obs::MetricsRegistry::global().gauge("fleet.replicas.healthy").set(healthy);
}

void FleetSupervisor::drain_pipe(std::size_t index) {
  Slot& slot = *slots_[index];
  const int fd = slot.proc.result_fd();
  if (fd < 0) return;
  try {
    slot.reader.read_available(fd);  // EOF just stops yielding frames
    std::string frame;
    while (slot.reader.next_frame(frame)) {
      if (frame == "ready") {
        slot.ping_failures = 0;
        set_health(index, ReplicaHealth::kHealthy);
      } else if (frame.rfind("drained", 0) == 0) {
        slot.drain_summary = frame;
      } else if (frame.rfind("error", 0) == 0) {
        obs::EventLog::global().emit(
            "fleet.replica.error",
            {{"replica", static_cast<int>(index)}, {"detail", frame}});
      }
    }
  } catch (const Error&) {
    // Torn framing: the replica is dying; try_reap will classify it.
  }
}

bool FleetSupervisor::wait_ready(std::size_t index, std::int64_t timeout_ms) {
  Slot& slot = *slots_[index];
  const std::int64_t deadline = steady_ms() + timeout_ms;
  while (steady_ms() < deadline) {
    drain_pipe(index);
    if (slot.health == ReplicaHealth::kHealthy) return true;
    const ExitStatus status = slot.proc.try_reap();
    if (!status.running) {
      slot.last_exit = status.describe();
      return false;  // died before ready
    }
    pollfd pfd{slot.proc.result_fd(), POLLIN, 0};
    poll_eintr(&pfd, 1, 20);
  }
  return false;
}

void FleetSupervisor::start() {
  MBUS_EXPECTS(!started_, "fleet already started");
  if (::mkdir(config_.socket_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error(cat("mkdir(", config_.socket_dir,
                    ") failed: ", std::strerror(errno)));
  }
  slots_.clear();
  for (int i = 0; i < config_.replicas; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->socket_path =
        replica_socket_path(config_.socket_dir, static_cast<std::size_t>(i));
    slots_.push_back(std::move(slot));
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) spawn_replica(i);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!wait_ready(i, config_.ready_timeout_ms)) {
      throw Error(cat("fleet replica ", i, " failed to become ready",
                      slots_[i]->last_exit.empty()
                          ? std::string()
                          : cat(" (", slots_[i]->last_exit, ")")));
    }
  }

  ClientConfig ping_config;
  ping_config.replicas = socket_paths();
  ping_config.hedge_delay_ms = 0;
  pinger_ = std::make_unique<MbusClient>(std::move(ping_config));
  started_ = true;
  obs::EventLog::global().emit("fleet.started",
                               {{"replicas", config_.replicas}});
}

void FleetSupervisor::tick() {
  MBUS_EXPECTS(started_, "fleet not started");
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    if (slot.health == ReplicaHealth::kFailed) continue;

    drain_pipe(i);

    const ExitStatus status = slot.proc.try_reap();
    if (!status.running) {
      slot.last_exit = status.describe();
      total_crashes_ += 1;
      registry.counter("fleet.crashes").increment();
      obs::EventLog::global().emit("fleet.replica.crash",
                                   {{"replica", static_cast<int>(i)},
                                    {"exit", slot.last_exit},
                                    {"respawns", slot.respawns}});
      set_health(i, ReplicaHealth::kCrashed);
      if (slot.respawns < config_.max_respawns) {
        slot.respawns += 1;
        total_respawns_ += 1;
        registry.counter("fleet.respawns").increment();
        spawn_replica(i);
        if (!wait_ready(i, config_.ready_timeout_ms)) {
          // Came back dead: burn through the budget on later ticks
          // rather than looping here.
          set_health(i, ReplicaHealth::kCrashed);
        }
      } else {
        set_health(i, ReplicaHealth::kFailed);
      }
      continue;
    }

    if (slot.health == ReplicaHealth::kHealthy ||
        slot.health == ReplicaHealth::kUnhealthy) {
      // Ping is answered inline by the event loop even under a full
      // queue or an open breaker — failure means crashed/wedged.
      if (pinger_->ping(i, config_.ping_timeout_ms)) {
        registry.counter("fleet.pings.ok").increment();
        slot.ping_failures = 0;
        if (slot.health == ReplicaHealth::kUnhealthy) {
          set_health(i, ReplicaHealth::kHealthy);
        }
      } else {
        registry.counter("fleet.pings.failed").increment();
        slot.ping_failures += 1;
        if (slot.ping_failures >= config_.unhealthy_after &&
            slot.health == ReplicaHealth::kHealthy) {
          set_health(i, ReplicaHealth::kUnhealthy);
        }
      }
    }
  }
}

void FleetSupervisor::kill_replica(std::size_t index, int sig) {
  MBUS_EXPECTS(index < slots_.size(), "replica index out of range");
  slots_[index]->proc.kill_now(sig);
  obs::EventLog::global().emit(
      "fleet.replica.killed",
      {{"replica", static_cast<int>(index)}, {"signal", sig}});
}

FleetReport FleetSupervisor::stop(std::int64_t grace_ms) {
  FleetReport report;
  report.replicas = static_cast<int>(slots_.size());
  bool all_zero = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    drain_pipe(i);
    ExitStatus status = slot.proc.try_reap();
    const bool was_running = status.running;
    if (was_running) {
      status = slot.proc.terminate(grace_ms);
    }
    // The drain summary frame is written right before _exit; the pipe
    // keeps its contents past the child's death.
    drain_pipe(i);
    slot.last_exit = status.describe();
    report.exit_descriptions.push_back(slot.last_exit);
    report.drain_summaries.push_back(slot.drain_summary);
    if (was_running && !(status.exited && status.code == 0)) {
      all_zero = false;
    }
  }
  report.respawns = total_respawns_;
  report.crashes = total_crashes_;
  report.all_exited_zero = all_zero;
  obs::EventLog::global().emit("fleet.stopped",
                               {{"respawns", total_respawns_},
                                {"crashes", total_crashes_},
                                {"all_exited_zero", all_zero}});
  started_ = false;
  return report;
}

std::vector<std::string> FleetSupervisor::socket_paths() const {
  std::vector<std::string> paths;
  paths.reserve(slots_.size());
  for (const auto& slot : slots_) paths.push_back(slot->socket_path);
  return paths;
}

ReplicaStatus FleetSupervisor::status(std::size_t index) const {
  MBUS_EXPECTS(index < slots_.size(), "replica index out of range");
  const Slot& slot = *slots_[index];
  ReplicaStatus out;
  out.health = slot.health;
  out.pid = slot.proc.pid();
  out.respawns = slot.respawns;
  out.socket_path = slot.socket_path;
  out.last_exit = slot.last_exit;
  return out;
}

std::size_t FleetSupervisor::healthy_count() const {
  std::size_t healthy = 0;
  for (const auto& slot : slots_) {
    if (slot->health == ReplicaHealth::kHealthy) ++healthy;
  }
  return healthy;
}

}  // namespace mbus::service
