// Resilient client for the mbusd evaluation fleet (DESIGN.md §15).
//
// `MbusClient` speaks the mbus-req v1 wire protocol (protocol.hpp) to a
// set of replica sockets and layers the request-level fault tolerance the
// daemon itself cannot provide:
//
//   * per-request ids — the client owns id assignment (a process-local
//     monotonic counter), so every attempt, hedge, and stale reply is
//     attributable to exactly one logical call;
//   * deadline propagation — each attempt carries the *remaining* call
//     budget on the wire, so a retry after a slow failure never grants
//     the server more time than the caller has left;
//   * bounded retries with decorrelated-jitter backoff — deterministic
//     under a seeded RNG (BackoffPolicy), so fault drills reproduce;
//   * hedged requests — after a hedge delay (fixed, or derived from the
//     client's observed p99), the same request (same id) is re-issued to
//     a second replica; the first definitive reply wins and the loser is
//     cancelled client-side (its id joins the connection's abandoned set
//     and its late reply is discarded on arrival). Replies are
//     deterministic functions of the request, so whichever replica
//     answers first returns the same bytes — the hedge changes tail
//     latency, never the result;
//   * health-checked failover — transport failures and shed/degraded
//     streaks mark a replica unhealthy for a cooldown; routing prefers
//     healthy replicas via pick-two-least-loaded (lowest EWMA latency).
//
// Threading: an MbusClient instance is single-threaded by design — one
// poll(2) loop multiplexes the primary and hedge connections, so the
// client can be forked into worker processes (bench/fleet_load) without
// fork-vs-threads hazards. Use one client per thread/process.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "service/protocol.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"

namespace mbus::service {

/// Classified transport failure of one connection attempt — the
/// vocabulary shared by MbusClient and the bench load clients
/// (satellite: service_load previously lumped both into one exit path).
enum class SocketFailure {
  kNone,             ///< No transport failure.
  kRefusedAtConnect, ///< connect(2) failed — nobody listening at start.
  kDiedMidRun,       ///< Established connection broke (EOF/EPIPE/reset).
};

const char* to_string(SocketFailure failure);

/// Decorrelated-jitter backoff (Brooker, "Exponential Backoff And
/// Jitter"): sleep = min(cap, uniform(base, prev * 3)). Deterministic
/// for a given seed — two clients with the same seed produce the same
/// sleep sequence, which is what makes retry drills reproducible.
class BackoffPolicy {
 public:
  BackoffPolicy(std::int64_t base_ms, std::int64_t cap_ms,
                std::uint64_t seed);

  /// Next sleep in ms; grows (jittered) toward `cap_ms` and stays there.
  std::int64_t next_ms();
  /// Restart the sequence (new logical call); the RNG stream continues.
  void reset() { prev_ms_ = base_ms_; }

 private:
  std::int64_t base_ms_;
  std::int64_t cap_ms_;
  std::int64_t prev_ms_;
  Xoshiro256 rng_;
};

struct ClientConfig {
  /// Replica socket paths, in fleet index order.
  std::vector<std::string> replicas;

  /// Attempt budget per call() (first try included).
  int max_attempts = 4;
  /// Backoff parameters; sleeps apply only to overloaded/degraded
  /// replies (transport failures fail over immediately — waiting on a
  /// dead socket helps nobody).
  std::int64_t backoff_base_ms = 2;
  std::int64_t backoff_cap_ms = 200;
  /// Seeds the backoff jitter; same seed → same retry timing.
  std::uint64_t seed = 0x5EEDC11E;

  /// Call budget when the request carries deadline_ms == 0.
  std::int64_t default_deadline_ms = 2000;

  /// Hedge delay: -1 derives it from the client's observed p99 latency
  /// (clamped to [hedge_min_delay_ms, hedge_max_delay_ms]); 0 disables
  /// hedging; > 0 is a fixed delay in ms.
  std::int64_t hedge_delay_ms = -1;
  std::int64_t hedge_min_delay_ms = 20;
  std::int64_t hedge_max_delay_ms = 500;

  /// Consecutive failures (transport or shed/degraded) before a replica
  /// is marked unhealthy, and how long it stays quarantined.
  int unhealthy_streak = 3;
  std::int64_t unhealthy_cooldown_ms = 500;

  enum class Policy {
    kLeastLoaded,  ///< Pick-two by lowest EWMA latency among healthy.
    kRoundRobin,   ///< Deterministic rotation (drills and tests).
  };
  Policy policy = Policy::kLeastLoaded;

  /// Throws InvalidArgument on nonsense (no replicas, attempts < 1, ...).
  void validate() const;
};

/// Outcome of one call(): either a parsed reply (ok or structured
/// error), or a transport/timeout failure, plus the resilience
/// bookkeeping tests and benches assert on.
struct CallResult {
  ServiceReply reply;       ///< Valid when has_reply.
  bool has_reply = false;   ///< A reply frame was parsed (ok or error).
  bool ok = false;          ///< has_reply && reply.ok.
  /// Last transport failure when !has_reply (kNone on local timeout).
  SocketFailure transport = SocketFailure::kNone;
  bool timed_out = false;   ///< The call's own deadline expired locally.
  int attempts = 0;         ///< Wire attempts issued (hedges not counted).
  bool hedged = false;      ///< A hedge was issued on some attempt.
  bool hedge_won = false;   ///< The winning reply came from the hedge leg.
  int served_by = -1;       ///< Replica index that produced the reply.
  bool failed_over = false; ///< Some attempt switched replicas.
  std::uint64_t request_id = 0;  ///< The id this call used on the wire.
  std::int64_t elapsed_us = 0;
};

/// Plain mirror of the cli.* counters for a single client instance
/// (single-threaded, so plain int64 fields — the obs registry aggregates
/// across instances/processes).
struct ClientStats {
  std::int64_t sent = 0;
  std::int64_t ok = 0;
  std::int64_t error_replies = 0;
  std::int64_t transport_failures = 0;
  std::int64_t timeouts = 0;
  std::int64_t retries = 0;
  std::int64_t failovers = 0;
  std::int64_t backoff_sleeps = 0;
  std::int64_t hedges_issued = 0;
  std::int64_t hedges_won = 0;
  std::int64_t hedges_cancelled = 0;
  std::int64_t stale_discarded = 0;
  std::int64_t connect_refused = 0;
  std::int64_t connection_died = 0;
  std::int64_t unhealthy_marks = 0;
};

class MbusClient {
 public:
  explicit MbusClient(ClientConfig config);
  ~MbusClient();

  MbusClient(const MbusClient&) = delete;
  MbusClient& operator=(const MbusClient&) = delete;

  /// Issue `request` (its id field is ignored; the client assigns one,
  /// reported in CallResult::request_id). Retries, failover, and
  /// hedging happen inside; the call returns when a definitive reply
  /// arrives, the attempt budget is exhausted, or the deadline expires.
  CallResult call(const ServiceRequest& request);

  /// Protocol-level ping against replica `index` with its own timeout;
  /// true on an ok reply. Does not disturb call() routing state beyond
  /// health bookkeeping.
  bool ping(std::size_t index, std::int64_t timeout_ms);

  const ClientStats& stats() const noexcept { return stats_; }
  const ClientConfig& config() const noexcept { return config_; }

  /// Health as the router sees it right now (cooldown expiry included).
  bool replica_healthy(std::size_t index) const;

  /// Drop every connection (the replicas see EOF); the next call
  /// reconnects lazily. Idempotent.
  void close();

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    /// Ids whose replies we no longer want (hedge losers); discarded on
    /// arrival instead of being mistaken for the current request.
    std::unordered_set<std::uint64_t> abandoned;
  };
  struct Replica {
    Conn conn;
    int failure_streak = 0;
    std::int64_t unhealthy_until_us = 0;
    double ewma_latency_us = 0.0;
  };

  bool ensure_connected(std::size_t index);
  void drop_connection(std::size_t index);
  void record_success(std::size_t index, std::int64_t latency_us);
  void record_failure(std::size_t index);
  /// Routing: primary and hedge picks for the next attempt.
  /// `avoid` (>= 0) excludes a replica that just failed this call.
  void pick_replicas(int avoid, int& primary, int& hedge);
  std::int64_t resolve_hedge_delay_ms() const;
  bool send_request(std::size_t index, const std::string& payload,
                    std::int64_t deadline_us);

  /// One wire attempt (primary + optional hedge); fills `out` with the
  /// reply or the classified failure. Returns true when a reply frame
  /// was obtained (ok or error).
  bool attempt(const ServiceRequest& request, int primary, int hedge,
               std::int64_t deadline_us, CallResult& out);

  ClientConfig config_;
  std::vector<Replica> replicas_;
  ClientStats stats_;
  std::uint64_t next_id_;
  std::size_t rr_next_ = 0;
  BackoffPolicy backoff_;
  /// Ring of recent successful call latencies for the p99-derived hedge
  /// delay (auto mode).
  std::vector<std::int64_t> latency_window_;
  std::size_t latency_next_ = 0;
};

}  // namespace mbus::service
