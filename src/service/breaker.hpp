// A circuit breaker over the evaluation engines (DESIGN.md §14).
//
// When the engines start failing persistently (a poisoned configuration,
// a sick machine, an injected fault storm), admitting more work only
// burns queue slots and deadlines on requests that will fail anyway. The
// breaker converts that failure mode into fast, explicit `degraded`
// replies:
//
//           +--------- record_failure x threshold ---------+
//           v                                              |
//       [kOpen] -- cooldown elapsed, one probe --> [kHalfOpen]
//           ^                                          |    |
//           +------------ probe failed ----------------+    |
//                                                 probe ok  |
//       [kClosed] <-----------------------------------------+
//
//   * kClosed   — requests flow; consecutive failures are counted and
//     any success resets the count.
//   * kOpen     — allow() returns false (the server replies `degraded`
//     immediately, no queueing) until `open_cooldown_ms` has elapsed.
//   * kHalfOpen — exactly one in-flight probe request is admitted; its
//     outcome decides between kClosed and another full kOpen cooldown.
//
// The clock is injected (monotonic microseconds) so the state machine is
// a pure function of its call sequence — tests drive it with a fake
// clock and never sleep. Thread-safe: the server's event loop calls
// allow() while pool workers call record_*.
#pragma once

#include <cstdint>
#include <mutex>

namespace mbus::service {

struct BreakerConfig {
  /// Consecutive failures that trip kClosed -> kOpen.
  int failure_threshold = 5;
  /// Time in kOpen before a half-open probe is allowed.
  std::int64_t open_cooldown_ms = 1000;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config);

  /// May this request be admitted at `now_us`? In kOpen, flips to
  /// kHalfOpen once the cooldown has elapsed and admits the caller as
  /// the probe; while a probe is in flight every other caller is
  /// refused.
  bool allow(std::int64_t now_us);

  /// Report the outcome of an admitted request. A success in kHalfOpen
  /// closes the breaker; a failure re-opens it (fresh cooldown from
  /// `now_us`). In kClosed, `failure_threshold` consecutive failures
  /// open it.
  void record_success(std::int64_t now_us);
  void record_failure(std::int64_t now_us);

  State state() const;
  int consecutive_failures() const;

  /// "closed" / "open" / "half-open" (event payloads, reports).
  static const char* to_string(State state);

 private:
  BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  std::int64_t opened_at_us_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace mbus::service
