#include "service/protocol.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "bignum/bigrational.hpp"
#include "core/evaluate.hpp"
#include "core/system.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus::service {

namespace {

constexpr const char* kRequestMagic = "mbus-req";
constexpr const char* kReplyMagic = "mbus-rep";
constexpr const char* kVersion = "v1";

/// %.17g round-trips every finite double bit-exactly, which is what
/// makes "served replies are bit-identical to direct evaluation"
/// testable on the wire.
std::string fmt_g17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::vector<std::string> split_spaces(const std::string& payload) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= payload.size()) {
    std::size_t space = payload.find(' ', start);
    if (space == std::string::npos) space = payload.size();
    if (space > start) tokens.push_back(payload.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

/// Split one `key=value` token; throws on a token with no '='.
void split_kv(const std::string& token, std::string& key,
              std::string& value) {
  const std::size_t eq = token.find('=');
  MBUS_EXPECTS(eq != std::string::npos && eq > 0,
               cat("malformed field '", token, "' — expected key=value"));
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  MBUS_EXPECTS(!value.empty() && end == value.c_str() + value.size() &&
                   errno == 0 && value[0] != '-',
               cat("malformed ", key, "='", value, "' — expected u64"));
  return static_cast<std::uint64_t>(parsed);
}

std::int64_t parse_i64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  MBUS_EXPECTS(!value.empty() && end == value.c_str() + value.size() &&
                   errno == 0,
               cat("malformed ", key, "='", value, "' — expected integer"));
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  const std::int64_t wide = parse_i64(key, value);
  MBUS_EXPECTS(wide >= -2147483648LL && wide <= 2147483647LL,
               cat(key, "='", value, "' out of int range"));
  return static_cast<int>(wide);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "0") return false;
  if (value == "1") return true;
  MBUS_EXPECTS(false, cat("malformed ", key, "='", value,
                          "' — expected 0 or 1"));
  return false;
}

}  // namespace

std::string to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kBandwidth: return "bandwidth";
    case Op::kSimulate: return "simulate";
    case Op::kSweep: return "sweep";
  }
  return "ping";
}

Op op_from_string(const std::string& name) {
  if (name == "ping") return Op::kPing;
  if (name == "bandwidth") return Op::kBandwidth;
  if (name == "simulate") return Op::kSimulate;
  if (name == "sweep") return Op::kSweep;
  throw InvalidArgument(cat("unknown op '", name,
                            "' — expected ping, bandwidth, simulate, "
                            "or sweep"));
}

std::string format_request(const ServiceRequest& request) {
  return cat(kRequestMagic, " ", kVersion, " id=", request.id,
             " op=", to_string(request.op), " scheme=", request.topo.scheme,
             " n=", request.topo.processors, " m=", request.topo.memories,
             " b=", request.topo.buses, " g=", request.topo.groups,
             " k=", request.topo.classes, " wl=", request.workload,
             " r=", request.rate, " cycles=", request.cycles,
             " warmup=", request.warmup, " seed=", request.seed,
             " reps=", request.replications,
             " resubmit=", request.resubmit ? 1 : 0,
             " engine=", mbus::to_string(request.engine),
             " bmax=", request.bmax, " deadline_ms=", request.deadline_ms);
}

ServiceRequest parse_request(const std::string& payload) {
  const std::vector<std::string> tokens = split_spaces(payload);
  MBUS_EXPECTS(tokens.size() >= 2 && tokens[0] == kRequestMagic &&
                   tokens[1] == kVersion,
               cat("not a ", kRequestMagic, " ", kVersion, " payload"));
  ServiceRequest request;
  bool have_id = false;
  std::set<std::string> seen;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string key, value;
    split_kv(tokens[i], key, value);
    MBUS_EXPECTS(seen.insert(key).second,
                 cat("duplicate field '", key, "'"));
    if (key == "id") {
      request.id = parse_u64(key, value);
      have_id = true;
    } else if (key == "op") {
      request.op = op_from_string(value);
    } else if (key == "scheme") {
      request.topo.scheme = value;
    } else if (key == "n") {
      request.topo.processors = parse_int(key, value);
    } else if (key == "m") {
      request.topo.memories = parse_int(key, value);
    } else if (key == "b") {
      request.topo.buses = parse_int(key, value);
    } else if (key == "g") {
      request.topo.groups = parse_int(key, value);
    } else if (key == "k") {
      request.topo.classes = parse_int(key, value);
    } else if (key == "wl") {
      MBUS_EXPECTS(value == "uniform" || value == "hier4",
                   cat("unknown workload '", value,
                       "' — expected uniform or hier4"));
      request.workload = value;
    } else if (key == "r") {
      // Validate the literal now so a malformed rate is a bad_request at
      // the door, not an internal error mid-evaluation.
      try {
        (void)BigRational::parse(value);
      } catch (const std::exception&) {
        throw InvalidArgument(cat("malformed r='", value,
                                  "' — expected a decimal rate"));
      }
      request.rate = value;
    } else if (key == "cycles") {
      request.cycles = parse_i64(key, value);
    } else if (key == "warmup") {
      request.warmup = parse_i64(key, value);
    } else if (key == "seed") {
      request.seed = parse_u64(key, value);
    } else if (key == "reps") {
      request.replications = parse_int(key, value);
    } else if (key == "resubmit") {
      request.resubmit = parse_bool(key, value);
    } else if (key == "engine") {
      request.engine = engine_kind_from_string(value);
    } else if (key == "bmax") {
      request.bmax = parse_int(key, value);
    } else if (key == "deadline_ms") {
      request.deadline_ms = parse_i64(key, value);
    } else {
      throw InvalidArgument(cat("unknown request field '", key, "'"));
    }
  }
  MBUS_EXPECTS(have_id, "request is missing its id field");
  return request;
}

double ServiceReply::field_double(const std::string& key) const {
  const auto it = fields.find(key);
  MBUS_EXPECTS(it != fields.end(), cat("reply has no field '", key, "'"));
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  MBUS_EXPECTS(!it->second.empty() &&
                   end == it->second.c_str() + it->second.size(),
               cat("reply field ", key, "='", it->second,
                   "' is not a double"));
  return value;
}

std::int64_t ServiceReply::field_int(const std::string& key) const {
  const auto it = fields.find(key);
  MBUS_EXPECTS(it != fields.end(), cat("reply has no field '", key, "'"));
  return parse_i64(key, it->second);
}

ServiceReply make_ok_reply(std::uint64_t id) {
  ServiceReply reply;
  reply.id = id;
  reply.ok = true;
  return reply;
}

ServiceReply make_error_reply(std::uint64_t id, const std::string& code,
                              const std::string& message) {
  ServiceReply reply;
  reply.id = id;
  reply.ok = false;
  reply.code = code;
  reply.message = message;
  return reply;
}

std::string format_reply(const ServiceReply& reply) {
  std::string out = cat(kReplyMagic, " ", kVersion, " id=", reply.id,
                        " status=", reply.ok ? "ok" : "error");
  if (!reply.ok) out += cat(" code=", reply.code);
  for (const auto& [key, value] : reply.fields) {
    out += cat(" ", key, "=", value);
  }
  // msg may contain spaces, so it is always the final field and consumes
  // the rest of the line on parse.
  if (!reply.message.empty()) out += cat(" msg=", reply.message);
  return out;
}

ServiceReply parse_reply(const std::string& payload) {
  const std::vector<std::string> tokens = split_spaces(payload);
  MBUS_EXPECTS(tokens.size() >= 2 && tokens[0] == kReplyMagic &&
                   tokens[1] == kVersion,
               cat("not a ", kReplyMagic, " ", kVersion, " payload"));
  ServiceReply reply;
  bool have_id = false;
  bool have_status = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string key, value;
    split_kv(tokens[i], key, value);
    if (key == "msg") {
      // Reassemble the rest of the payload, spaces included.
      std::string message = value;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        message += cat(" ", tokens[j]);
      }
      reply.message = message;
      break;
    }
    if (key == "id") {
      reply.id = parse_u64(key, value);
      have_id = true;
    } else if (key == "status") {
      MBUS_EXPECTS(value == "ok" || value == "error",
                   cat("malformed status '", value, "'"));
      reply.ok = value == "ok";
      have_status = true;
    } else if (key == "code") {
      reply.code = value;
    } else {
      MBUS_EXPECTS(reply.fields.emplace(key, value).second,
                   cat("duplicate reply field '", key, "'"));
    }
  }
  MBUS_EXPECTS(have_id && have_status,
               "reply is missing its id or status field");
  return reply;
}

namespace {

Workload build_workload(const ServiceRequest& request) {
  const int n = request.topo.processors;
  const int m = request.topo.memories;
  const BigRational rate = BigRational::parse(request.rate);
  if (request.workload == "uniform") {
    return Workload::uniform(n, m, rate);
  }
  // hier4: the Section-IV two-level {4, N/4} hierarchy with aggregate
  // fractions 0.6 / 0.3 / 0.1 — the paper's own workload.
  MBUS_EXPECTS(n == m, cat("workload hier4 needs N == M, got N=", n,
                           " M=", m));
  MBUS_EXPECTS(n % 4 == 0 && n >= 4,
               cat("workload hier4 needs 4 | N, got N=", n));
  return Workload::hierarchical_nxn(
      {4, n / 4},
      {BigRational::parse("0.6"), BigRational::parse("0.3"),
       BigRational::parse("0.1")},
      rate);
}

void check_cancel(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    throw Cancelled("service request cancelled");
  }
}

}  // namespace

ServiceReply execute_request(const ServiceRequest& request,
                             const std::atomic<bool>* cancel) {
  ServiceReply reply = make_ok_reply(request.id);
  reply.fields["op"] = to_string(request.op);
  if (request.op == Op::kPing) return reply;

  check_cancel(cancel);
  const std::unique_ptr<Topology> topology = make_topology(request.topo);
  const Workload workload = build_workload(request);

  if (request.op == Op::kBandwidth) {
    const Evaluation e = evaluate(*topology, workload, {});
    reply.fields["bandwidth"] = fmt_g17(e.analytic_bandwidth);
    reply.fields["x"] = fmt_g17(e.request_probability);
    reply.fields["crossbar"] = fmt_g17(e.crossbar_bandwidth);
    reply.fields["perf_cost"] = fmt_g17(e.perf_cost_ratio);
    reply.fields["pa"] = fmt_g17(e.acceptance_probability);
    return reply;
  }

  if (request.op == Op::kSimulate) {
    MBUS_EXPECTS(request.cycles > 0, "simulate needs cycles > 0");
    MBUS_EXPECTS(request.warmup >= 0, "simulate needs warmup >= 0");
    MBUS_EXPECTS(request.replications >= 1, "simulate needs reps >= 1");
    EvaluationOptions options;
    options.simulate = true;
    options.sim.cycles = request.cycles;
    options.sim.warmup = request.warmup;
    options.sim.seed = request.seed;
    options.sim.resubmit_blocked = request.resubmit;
    options.sim.engine = request.engine;
    options.sim.cancel = cancel;
    options.parallel.replications = request.replications;
    options.parallel.threads = 1;  // service workers are the parallelism
    const Evaluation e = evaluate(*topology, workload, options);
    reply.fields["bandwidth"] = fmt_g17(e.simulation->bandwidth);
    reply.fields["ci_half_width"] =
        fmt_g17(e.simulation->bandwidth_ci.half_width);
    reply.fields["analytic"] = fmt_g17(e.analytic_bandwidth);
    reply.fields["blocked_fraction"] =
        fmt_g17(e.simulation->blocked_fraction);
    reply.fields["offered_load"] = fmt_g17(e.simulation->offered_load);
    reply.fields["bus_utilization"] =
        fmt_g17(e.simulation->bus_utilization);
    reply.fields["mean_service_cycles"] =
        fmt_g17(e.simulation->mean_service_cycles);
    reply.fields["measured_cycles"] =
        cat(e.simulation->measured_cycles);
    reply.fields["reps"] = cat(e.simulation->replications);
    reply.fields["engine"] = mbus::to_string(request.engine);
    return reply;
  }

  // Op::kSweep — closed-form bandwidth for B = 1 .. bmax.
  const int limit = std::min(request.topo.processors,
                             request.topo.memories);
  const int bmax = request.bmax > 0 ? request.bmax : request.topo.buses;
  MBUS_EXPECTS(bmax >= 1 && bmax <= limit,
               cat("sweep needs 1 <= bmax <= min(N, M) = ", limit,
                   ", got ", bmax));
  std::vector<std::string> bandwidths;
  bandwidths.reserve(static_cast<std::size_t>(bmax));
  for (int b = 1; b <= bmax; ++b) {
    check_cancel(cancel);
    TopologySpec point = request.topo;
    point.buses = b;
    const std::unique_ptr<Topology> topo_b = make_topology(point);
    const Evaluation e = evaluate(*topo_b, workload, {});
    bandwidths.push_back(fmt_g17(e.analytic_bandwidth));
  }
  reply.fields["bmax"] = cat(bmax);
  reply.fields["bandwidths"] = join(bandwidths, ",");
  return reply;
}

}  // namespace mbus::service
