#include "service/client.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/socket.hpp"

namespace mbus::service {

namespace {

/// Monotonic microseconds independent of the obs layer (which stubs its
/// clock out under MBUS_NO_OBS — deadlines must keep working there).
std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter& cli_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

/// Recent-latency window size for the p99-derived hedge delay. Small on
/// purpose: the delay should track the *current* regime, and a p99 over
/// 64 samples is the ~max of the window — a conservative hedge trigger.
constexpr std::size_t kLatencyWindow = 64;
constexpr std::size_t kLatencyMinSamples = 8;

}  // namespace

const char* to_string(SocketFailure failure) {
  switch (failure) {
    case SocketFailure::kNone:
      return "none";
    case SocketFailure::kRefusedAtConnect:
      return "connect_refused";
    case SocketFailure::kDiedMidRun:
      return "connection_died";
  }
  return "unknown";
}

BackoffPolicy::BackoffPolicy(std::int64_t base_ms, std::int64_t cap_ms,
                             std::uint64_t seed)
    : base_ms_(base_ms), cap_ms_(cap_ms), prev_ms_(base_ms), rng_(seed) {
  MBUS_EXPECTS(base_ms >= 1, "backoff base must be >= 1 ms");
  MBUS_EXPECTS(cap_ms >= base_ms, "backoff cap must be >= base");
}

std::int64_t BackoffPolicy::next_ms() {
  // Decorrelated jitter: uniform in [base, prev * 3], capped. The
  // uniform draw decorrelates retry storms (two clients that collided
  // once do not collide forever); the *3 growth backs off exponentially
  // in expectation.
  const std::int64_t hi = std::min(cap_ms_, prev_ms_ * 3);
  const std::int64_t lo = base_ms_;
  std::int64_t sleep = lo;
  if (hi > lo) {
    sleep = lo + static_cast<std::int64_t>(
                     rng_.below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  prev_ms_ = sleep;
  return sleep;
}

void ClientConfig::validate() const {
  MBUS_EXPECTS(!replicas.empty(), "client needs at least one replica");
  for (const auto& path : replicas) {
    MBUS_EXPECTS(!path.empty(), "replica socket path must not be empty");
  }
  MBUS_EXPECTS(max_attempts >= 1, "max_attempts must be >= 1");
  MBUS_EXPECTS(backoff_base_ms >= 1, "backoff_base_ms must be >= 1");
  MBUS_EXPECTS(backoff_cap_ms >= backoff_base_ms,
               "backoff_cap_ms must be >= backoff_base_ms");
  MBUS_EXPECTS(default_deadline_ms >= 1, "default_deadline_ms must be >= 1");
  MBUS_EXPECTS(hedge_delay_ms >= -1, "hedge_delay_ms must be >= -1");
  MBUS_EXPECTS(hedge_min_delay_ms >= 1, "hedge_min_delay_ms must be >= 1");
  MBUS_EXPECTS(hedge_max_delay_ms >= hedge_min_delay_ms,
               "hedge_max_delay_ms must be >= hedge_min_delay_ms");
  MBUS_EXPECTS(unhealthy_streak >= 1, "unhealthy_streak must be >= 1");
  MBUS_EXPECTS(unhealthy_cooldown_ms >= 0,
               "unhealthy_cooldown_ms must be >= 0");
}

MbusClient::MbusClient(ClientConfig config)
    : config_(std::move(config)),
      next_id_(1),
      backoff_(config_.backoff_base_ms, config_.backoff_cap_ms,
               config_.seed) {
  config_.validate();
  replicas_.resize(config_.replicas.size());
}

MbusClient::~MbusClient() { close(); }

void MbusClient::close() {
  for (auto& replica : replicas_) {
    if (replica.conn.fd >= 0) {
      close_fd(replica.conn.fd);
      replica.conn.fd = -1;
    }
    replica.conn.reader = FrameReader{};
    replica.conn.abandoned.clear();
  }
}

bool MbusClient::replica_healthy(std::size_t index) const {
  return replicas_[index].unhealthy_until_us <= now_us();
}

bool MbusClient::ensure_connected(std::size_t index) {
  Replica& replica = replicas_[index];
  if (replica.conn.fd >= 0) return true;
  int err = 0;
  const int fd = try_connect_unix(config_.replicas[index], &err);
  if (fd < 0) {
    stats_.connect_refused += 1;
    cli_counter("cli.connect.refused").increment();
    return false;
  }
  // FrameReader::read_available drains until EAGAIN, so the fd must be
  // non-blocking or a quiet connection would hang the poll loop.
  set_nonblocking(fd);
  replica.conn.fd = fd;
  replica.conn.reader = FrameReader{};
  replica.conn.abandoned.clear();
  return true;
}

void MbusClient::drop_connection(std::size_t index) {
  Conn& conn = replicas_[index].conn;
  if (conn.fd >= 0) {
    close_fd(conn.fd);
    conn.fd = -1;
  }
  conn.reader = FrameReader{};
  // In-flight replies died with the connection; nothing left to discard.
  conn.abandoned.clear();
}

void MbusClient::record_success(std::size_t index, std::int64_t latency_us) {
  Replica& replica = replicas_[index];
  replica.failure_streak = 0;
  replica.ewma_latency_us =
      replica.ewma_latency_us == 0.0
          ? static_cast<double>(latency_us)
          : 0.8 * replica.ewma_latency_us + 0.2 * static_cast<double>(latency_us);
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(latency_us);
  } else {
    latency_window_[latency_next_] = latency_us;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void MbusClient::record_failure(std::size_t index) {
  Replica& replica = replicas_[index];
  replica.failure_streak += 1;
  const std::int64_t now = now_us();
  // Mark only on the healthy→unhealthy transition; once quarantined, a
  // failed recovery probe re-arms the cooldown via the same path (the
  // streak is not reset, so one post-cooldown failure re-marks — the
  // breaker's half-open behavior).
  if (replica.failure_streak >= config_.unhealthy_streak &&
      replica.unhealthy_until_us <= now) {
    replica.unhealthy_until_us =
        now + config_.unhealthy_cooldown_ms * 1000;
    stats_.unhealthy_marks += 1;
    cli_counter("cli.replica.unhealthy").increment();
    obs::EventLog::global().emit(
        "cli.replica.unhealthy",
        {{"replica", static_cast<int>(index)},
         {"streak", replica.failure_streak},
         {"cooldown_ms", config_.unhealthy_cooldown_ms}});
  }
}

void MbusClient::pick_replicas(int avoid, int& primary, int& hedge) {
  const int n = static_cast<int>(replicas_.size());
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i != avoid && replica_healthy(static_cast<std::size_t>(i))) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    // Nobody looks healthy: trying a quarantined replica beats failing
    // without a wire attempt (quarantine is a routing preference, not a
    // ban).
    for (int i = 0; i < n; ++i) {
      if (i != avoid) candidates.push_back(i);
    }
  }
  if (candidates.empty()) candidates.push_back(avoid);  // n == 1

  if (config_.policy == ClientConfig::Policy::kRoundRobin) {
    // Rotate over the full index space, landing on the next candidate.
    for (int step = 0; step < n; ++step) {
      const int i = static_cast<int>((rr_next_ + static_cast<std::size_t>(step)) %
                                     static_cast<std::size_t>(n));
      if (std::find(candidates.begin(), candidates.end(), i) !=
          candidates.end()) {
        primary = i;
        rr_next_ = static_cast<std::size_t>(i) + 1;
        break;
      }
    }
  } else {
    // Pick-two-least-loaded: lowest EWMA latency wins; an untried
    // replica (EWMA 0) sorts first so load spreads before it
    // concentrates. Ties break by index for determinism.
    std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
      const double ea = replicas_[static_cast<std::size_t>(a)].ewma_latency_us;
      const double eb = replicas_[static_cast<std::size_t>(b)].ewma_latency_us;
      if (ea != eb) return ea < eb;
      return a < b;
    });
    primary = candidates.front();
  }

  hedge = -1;
  for (int candidate : candidates) {
    if (candidate != primary) {
      hedge = candidate;
      break;
    }
  }
  if (config_.policy == ClientConfig::Policy::kRoundRobin && hedge < 0 &&
      n > 1) {
    // Round-robin with every other replica quarantined: hedge to the
    // next index anyway (same rationale as the empty-candidate fallback).
    hedge = (primary + 1) % n;
  }
}

std::int64_t MbusClient::resolve_hedge_delay_ms() const {
  if (config_.hedge_delay_ms >= 0) return config_.hedge_delay_ms;
  if (latency_window_.size() < kLatencyMinSamples) {
    // Not enough signal yet: hedge conservatively late rather than
    // doubling load on a cold start.
    return config_.hedge_max_delay_ms;
  }
  std::vector<std::int64_t> sorted = latency_window_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       0.99 * static_cast<double>(sorted.size())));
  const std::int64_t p99_ms = (sorted[index] + 999) / 1000;
  return std::clamp(p99_ms, config_.hedge_min_delay_ms,
                    config_.hedge_max_delay_ms);
}

bool MbusClient::send_request(std::size_t index, const std::string& payload,
                              std::int64_t deadline_us) {
  const std::string frame = encode_frame(payload);
  const int fd = replicas_[index].conn.fd;
  std::size_t written = 0;
  while (written < frame.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process — the client cannot assume the embedding application
    // ignores SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const std::int64_t remaining_ms = (deadline_us - now_us()) / 1000;
      if (remaining_ms <= 0) return false;
      pollfd pfd{fd, POLLOUT, 0};
      if (poll_eintr(&pfd, 1, static_cast<int>(std::min<std::int64_t>(
                                  remaining_ms, 1000))) < 0) {
        return false;
      }
      continue;
    }
    return false;  // EPIPE / ECONNRESET / anything fatal
  }
  return true;
}

bool MbusClient::attempt(const ServiceRequest& request, int primary,
                         int hedge, std::int64_t deadline_us,
                         CallResult& out) {
  const std::int64_t attempt_start = now_us();
  const std::size_t pri = static_cast<std::size_t>(primary);

  if (!ensure_connected(pri)) {
    out.transport = SocketFailure::kRefusedAtConnect;
    record_failure(pri);
    return false;
  }

  // Deadline propagation: the wire deadline is the *remaining* call
  // budget, so a retry never grants the server time the caller no
  // longer has.
  ServiceRequest wire = request;
  wire.deadline_ms =
      std::max<std::int64_t>(1, (deadline_us - attempt_start) / 1000);
  const std::string payload = format_request(wire);

  if (!send_request(pri, payload, deadline_us)) {
    out.transport = SocketFailure::kDiedMidRun;
    stats_.connection_died += 1;
    cli_counter("cli.connection.died").increment();
    drop_connection(pri);
    record_failure(pri);
    return false;
  }
  stats_.sent += 1;
  cli_counter("cli.requests.sent").increment();

  const std::int64_t hedge_delay_ms =
      hedge >= 0 ? resolve_hedge_delay_ms() : 0;
  const bool hedge_enabled = hedge >= 0 && hedge_delay_ms > 0;
  const std::int64_t hedge_due_us = attempt_start + hedge_delay_ms * 1000;
  bool hedge_sent = false;

  // Legs carrying this request right now; a leg leaves on death.
  std::vector<std::size_t> legs{pri};

  const auto abandon_everywhere = [&] {
    for (std::size_t leg : legs) {
      replicas_[leg].conn.abandoned.insert(request.id);
    }
  };

  while (true) {
    const std::int64_t now = now_us();
    if (now >= deadline_us) {
      // The reply may still arrive on a persistent connection; make
      // sure a later call never mistakes it for its own.
      abandon_everywhere();
      out.timed_out = true;
      return false;
    }

    std::int64_t timeout_ms = (deadline_us - now + 999) / 1000;
    if (hedge_enabled && !hedge_sent) {
      if (now >= hedge_due_us) {
        const std::size_t h = static_cast<std::size_t>(hedge);
        stats_.hedges_issued += 1;
        cli_counter("cli.hedges.issued").increment();
        out.hedged = true;
        hedge_sent = true;
        if (ensure_connected(h) && send_request(h, payload, deadline_us)) {
          legs.push_back(h);
          stats_.sent += 1;
          cli_counter("cli.requests.sent").increment();
        } else {
          // The hedge leg failing is not a failure of the attempt; the
          // primary is still in flight.
          record_failure(h);
          if (replicas_[h].conn.fd >= 0) drop_connection(h);
        }
        continue;
      }
      timeout_ms = std::min(timeout_ms, (hedge_due_us - now + 999) / 1000);
    }

    pollfd pfds[2];
    nfds_t nfds = 0;
    for (std::size_t leg : legs) {
      pfds[nfds++] = pollfd{replicas_[leg].conn.fd, POLLIN, 0};
    }
    poll_eintr(pfds, nfds, static_cast<int>(std::min<std::int64_t>(
                               timeout_ms, 1000)));

    // Read every readable leg, then scan for frames. Death of one leg
    // is survivable while another still carries the request.
    std::vector<std::size_t> alive;
    for (std::size_t leg : legs) {
      Conn& conn = replicas_[leg].conn;
      bool leg_alive = true;
      try {
        leg_alive = conn.reader.read_available(conn.fd);
      } catch (const Error&) {
        leg_alive = false;  // framing corruption — unrecoverable stream
      }
      if (!leg_alive) {
        stats_.connection_died += 1;
        cli_counter("cli.connection.died").increment();
        drop_connection(leg);
        record_failure(leg);
        continue;
      }

      std::string frame;
      bool conn_ok = true;
      while (true) {
        try {
          if (!conn.reader.next_frame(frame)) break;
        } catch (const Error&) {
          conn_ok = false;
          break;
        }
        ServiceReply reply;
        try {
          reply = parse_reply(frame);
        } catch (const Error&) {
          conn_ok = false;  // garbage payload: the stream is suspect
          break;
        }
        if (conn.abandoned.erase(reply.id) > 0 ||
            reply.id != request.id) {
          // A hedge loser or a previous attempt's late reply.
          stats_.stale_discarded += 1;
          cli_counter("cli.hedges.stale_discarded").increment();
          continue;
        }
        // Winner. Cancel the loser client-side: its reply, when it
        // lands, is discarded by id. The loser also gets the winner's
        // latency as a censored EWMA sample ("it took at least this
        // long") — without it, a replica whose requests are always
        // rescued by the hedge never records anything and keeps looking
        // fast to the least-loaded router.
        const std::int64_t win_latency_us = now_us() - attempt_start;
        for (std::size_t other : legs) {
          if (other != leg && replicas_[other].conn.fd >= 0) {
            replicas_[other].conn.abandoned.insert(request.id);
            stats_.hedges_cancelled += 1;
            cli_counter("cli.hedges.cancelled").increment();
            Replica& loser = replicas_[other];
            loser.ewma_latency_us =
                std::max(loser.ewma_latency_us,
                         static_cast<double>(win_latency_us));
          }
        }
        out.reply = reply;
        out.has_reply = true;
        out.ok = reply.ok;
        out.served_by = static_cast<int>(leg);
        if (hedge_sent && leg == static_cast<std::size_t>(hedge)) {
          out.hedge_won = true;
          stats_.hedges_won += 1;
          cli_counter("cli.hedges.won").increment();
        }
        if (reply.ok) {
          record_success(leg, now_us() - attempt_start);
        }
        return true;
      }
      if (!conn_ok) {
        stats_.connection_died += 1;
        cli_counter("cli.connection.died").increment();
        drop_connection(leg);
        record_failure(leg);
        continue;
      }
      alive.push_back(leg);
    }
    legs = std::move(alive);

    if (legs.empty()) {
      if (hedge_enabled && !hedge_sent) {
        // The primary died before the hedge fired; hedging now would
        // just be a retry — let the retry loop do it with failover
        // accounting.
      }
      out.transport = SocketFailure::kDiedMidRun;
      return false;
    }
  }
}

CallResult MbusClient::call(const ServiceRequest& request) {
  CallResult out;
  out.request_id = next_id_++;

  ServiceRequest wire = request;
  wire.id = out.request_id;

  const std::int64_t budget_ms = request.deadline_ms > 0
                                     ? request.deadline_ms
                                     : config_.default_deadline_ms;
  const std::int64_t start_us = now_us();
  const std::int64_t deadline_us = start_us + budget_ms * 1000;

  backoff_.reset();
  int prev_replica = -1;
  int avoid = -1;

  while (out.attempts < config_.max_attempts && now_us() < deadline_us) {
    int primary = -1;
    int hedge = -1;
    pick_replicas(avoid, primary, hedge);
    if (primary < 0) break;

    if (prev_replica >= 0 && primary != prev_replica) {
      out.failed_over = true;
      stats_.failovers += 1;
      cli_counter("cli.failovers").increment();
    }

    out.attempts += 1;
    // Reset per-attempt outcome fields (kept: hedged/hedge stats).
    out.transport = SocketFailure::kNone;
    out.timed_out = false;

    const bool got = attempt(wire, primary, hedge, deadline_us, out);
    prev_replica = primary;

    if (got) {
      if (out.ok) break;
      const std::string& code = out.reply.code;
      if (code == kErrBadRequest) break;  // a client bug; retrying repeats it

      record_failure(static_cast<std::size_t>(
          out.served_by >= 0 ? out.served_by : primary));
      const bool last = out.attempts >= config_.max_attempts;
      if (!last) {
        stats_.retries += 1;
        cli_counter("cli.retries").increment();
        if (code == kErrOverloaded || code == kErrDegraded) {
          // Backing off is the point of the overloaded/degraded codes;
          // the jittered sleep is bounded by the remaining budget.
          const std::int64_t sleep_ms =
              std::min(backoff_.next_ms(), (deadline_us - now_us()) / 1000);
          if (sleep_ms > 0) {
            stats_.backoff_sleeps += 1;
            cli_counter("cli.backoff_sleeps").increment();
            std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          }
        }
        if (code == kErrDegraded || code == kErrDraining ||
            code == kErrInternal || code == kErrCancelled) {
          // These say "this replica, right now, cannot serve" — route
          // the retry elsewhere.
          avoid = out.served_by >= 0 ? out.served_by : primary;
        }
      }
      continue;
    }

    if (out.timed_out) break;  // the call's own budget is gone

    // Transport failure: fail over immediately (sleeping on a dead
    // socket helps nobody); record_failure already ran inside attempt().
    avoid = primary;
    if (out.attempts < config_.max_attempts) {
      stats_.retries += 1;
      cli_counter("cli.retries").increment();
    }
  }

  out.elapsed_us = now_us() - start_us;
  if (out.ok) {
    stats_.ok += 1;
    cli_counter("cli.requests.ok").increment();
    obs::MetricsRegistry::global()
        .histogram("cli.call_us", obs::latency_us_bounds())
        .observe(out.elapsed_us);
  } else if (out.has_reply) {
    stats_.error_replies += 1;
    cli_counter("cli.requests.error").increment();
  } else if (out.timed_out) {
    stats_.timeouts += 1;
    cli_counter("cli.requests.timeout").increment();
  } else {
    stats_.transport_failures += 1;
    cli_counter("cli.requests.transport_failed").increment();
  }
  return out;
}

bool MbusClient::ping(std::size_t index, std::int64_t timeout_ms) {
  // A transient connection on purpose: a ping must tell us whether the
  // *daemon* is alive, not whether an old connection still buffers.
  int err = 0;
  const int fd = try_connect_unix(config_.replicas[index], &err);
  if (fd < 0) return false;
  set_nonblocking(fd);

  ServiceRequest ping_req;
  ping_req.op = Op::kPing;
  ping_req.id = next_id_++;
  ping_req.deadline_ms = std::max<std::int64_t>(1, timeout_ms);
  const std::string frame = encode_frame(format_request(ping_req));
  const std::int64_t deadline = now_us() + timeout_ms * 1000;

  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        now_us() < deadline) {
      pollfd pfd{fd, POLLOUT, 0};
      poll_eintr(&pfd, 1, 10);
      continue;
    }
    close_fd(fd);
    return false;
  }

  FrameReader reader;
  std::string payload;
  while (now_us() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    const std::int64_t remaining_ms = (deadline - now_us() + 999) / 1000;
    poll_eintr(&pfd, 1,
               static_cast<int>(std::max<std::int64_t>(1, remaining_ms)));
    bool alive = true;
    try {
      alive = reader.read_available(fd);
      if (reader.next_frame(payload)) {
        const ServiceReply reply = parse_reply(payload);
        close_fd(fd);
        return reply.ok && reply.id == ping_req.id;
      }
    } catch (const Error&) {
      alive = false;
    }
    if (!alive) break;
  }
  close_fd(fd);
  return false;
}

}  // namespace mbus::service
