#include "service/breaker.hpp"

#include "util/error.hpp"
#include "util/format.hpp"

namespace mbus::service {

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  MBUS_EXPECTS(config.failure_threshold >= 1,
               cat("breaker failure_threshold must be >= 1, got ",
                   config.failure_threshold));
  MBUS_EXPECTS(config.open_cooldown_ms >= 0,
               cat("breaker open_cooldown_ms must be >= 0, got ",
                   config.open_cooldown_ms));
}

bool CircuitBreaker::allow(std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ < config_.open_cooldown_ms * 1000) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;  // this caller is the probe
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(std::int64_t) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probe_in_flight_ = false;
  }
}

void CircuitBreaker::record_failure(std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

const char* CircuitBreaker::to_string(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "closed";
}

}  // namespace mbus::service
