// Wire protocol of the mbusd evaluation service (DESIGN.md §14).
//
// Transport: unix-domain stream socket carrying the same length-prefixed
// frames as the supervised-runner pipes (util/subprocess.hpp
// write_frame/FrameReader). Every frame payload is one space-separated
// text line:
//
//   request:  mbus-req v1 id=<u64> op=<op> key=value ...
//   reply:    mbus-rep v1 id=<u64> status=ok key=value ...
//             mbus-rep v1 id=<u64> status=error code=<code> msg=<text...>
//
// Requests are strict: unknown keys, malformed values, and a missing id
// are rejected at parse time (InvalidArgument), so a client typo can
// never be silently half-honored. Replies carry their op-specific
// payload as sorted key=value fields; doubles are rendered with %.17g,
// which round-trips bit-exactly, so a served reply is comparable
// bit-for-bit against a direct in-process evaluate() of the same
// request.
//
// Error codes (the overload vocabulary — structured, never a silent
// drop):
//   bad_request        the request itself is invalid (client bug)
//   overloaded         admission queue full; retry later (load shed)
//   degraded           circuit breaker open; engines are failing
//   deadline_exceeded  the per-request deadline fired before completion
//   cancelled          server drain cut the request short
//   draining           arrived after drain began; not admitted
//   internal           the evaluation failed (feeds the breaker)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/engine.hpp"
#include "topology/factory.hpp"

namespace mbus::service {

/// Error-code vocabulary (see the table above).
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDegraded = "degraded";
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kErrCancelled = "cancelled";
inline constexpr const char* kErrDraining = "draining";
inline constexpr const char* kErrInternal = "internal";

enum class Op { kPing, kBandwidth, kSimulate, kSweep };

std::string to_string(Op op);
/// Parse "ping"/"bandwidth"/"simulate"/"sweep"; throws InvalidArgument.
Op op_from_string(const std::string& name);

struct ServiceRequest {
  std::uint64_t id = 0;
  Op op = Op::kPing;

  /// Topology: scheme/n/m/b/g/k map onto TopologySpec.
  TopologySpec topo;
  /// Workload: "uniform" or "hier4" (the Section-IV two-level {4, N/4}
  /// hierarchy with 0.6/0.3/0.1 aggregate fractions; requires 4 | N).
  std::string workload = "uniform";
  /// Request rate r as a decimal string — kept textual end to end so the
  /// exact-rational path sees the same literal the client typed.
  std::string rate = "1";

  /// Simulation knobs (op=simulate).
  std::int64_t cycles = 20000;
  std::int64_t warmup = 1000;
  std::uint64_t seed = 0xC0FFEE;
  int replications = 1;
  bool resubmit = false;
  EngineKind engine = EngineKind::kFast;

  /// op=sweep: closed-form bandwidth for every B in [1, bmax]
  /// (0 = use topo.buses).
  int bmax = 0;

  /// Wall-clock budget for this request, queue wait included.
  /// 0 = server default; servers clamp to their configured maximum.
  std::int64_t deadline_ms = 0;
};

/// Render `request` as a wire payload (inverse of parse_request).
std::string format_request(const ServiceRequest& request);

/// Parse a request payload. Throws InvalidArgument on malformed input
/// (bad magic, unknown/duplicate keys, unparsable values, missing id).
ServiceRequest parse_request(const std::string& payload);

struct ServiceReply {
  std::uint64_t id = 0;
  bool ok = false;
  /// One of the kErr* codes when !ok.
  std::string code;
  /// Human-readable detail (always last on the wire; may contain spaces).
  std::string message;
  /// Op-specific payload, serialized in sorted key order.
  std::map<std::string, std::string> fields;

  double field_double(const std::string& key) const;
  std::int64_t field_int(const std::string& key) const;
};

ServiceReply make_ok_reply(std::uint64_t id);
ServiceReply make_error_reply(std::uint64_t id, const std::string& code,
                              const std::string& message);

/// Render `reply` as a wire payload (inverse of parse_reply).
std::string format_reply(const ServiceReply& reply);

/// Parse a reply payload; throws InvalidArgument on malformed input.
ServiceReply parse_reply(const std::string& payload);

/// Execute `request` in-process: build the topology and workload, run
/// the same evaluate() the batch CLIs use (cancellable via `cancel`,
/// which may be null), and serialize the result. This is the single
/// evaluation path — the daemon's workers call it, and tests call it
/// directly to prove served replies are bit-identical to in-process
/// evaluation. Throws: InvalidArgument for unbuildable requests,
/// Cancelled when `cancel` fires, anything the engines throw.
ServiceReply execute_request(const ServiceRequest& request,
                             const std::atomic<bool>* cancel);

}  // namespace mbus::service
